package service

// The chaos suite: every test arms fault sites (internal/fault) with
// probability 1 and a fixed seed, so failures are injected on every
// hit and the assertions are deterministic. Fault state is process-
// global, so none of these tests use t.Parallel, and each defers
// fault.Reset() so an armed site never leaks into the next test. The
// suite runs under -race in CI (make chaos / make ci).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// waitGoroutines polls until the goroutine count settles back to at
// most want, failing after two seconds — the leak check for paths
// that spawn watchers (batch contexts) or park workers.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, want <= %d", n, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustConfigure(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Configure(spec); err != nil {
		t.Fatal(err)
	}
}

// TestChaosLoadErrorDoesNotPoisonSingleflight: an injected loader
// failure must answer the requests that hit it with a structured
// error and leave nothing cached — once the fault clears, the next
// request loads the dictionary normally.
func TestChaosLoadErrorDoesNotPoisonSingleflight(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	mustConfigure(t, "cache-load-error:1:42")
	status, body := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusInternalServerError {
		t.Fatalf("status under injected load error = %d, body %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v (%s)", err, body)
	}
	if !strings.Contains(eb.Error, "injected fault") {
		t.Errorf("error body %q does not surface the load failure", eb.Error)
	}
	if s.cache.Contains("alpha") {
		t.Fatal("failed load left an entry resident (poisoned cache)")
	}

	fault.Reset()
	status, body = postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusOK {
		t.Fatalf("status after fault cleared = %d, body %s (singleflight poisoned)", status, body)
	}
	if !s.cache.Contains("alpha") {
		t.Error("successful load after the fault cleared is not resident")
	}
}

// TestChaosLoadRetriesExhaust: with -load-retries configured, an
// always-failing load is attempted 1+retries times inside one request
// and the retries counter records the backoff attempts.
func TestChaosLoadRetriesExhaust(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, func(c *Config) { c.LoadRetries = 2 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	mustConfigure(t, "cache-load-error:1:7")
	status, body := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", status, body)
	}
	st := s.cache.Stats()
	if st.Loads != 3 || st.LoadErrors != 3 || st.Retries != 2 {
		t.Errorf("loads/errors/retries = %d/%d/%d, want 3/3/2", st.Loads, st.LoadErrors, st.Retries)
	}
}

// TestChaosCorruptDictionaryRejected: corrupted dictionary bytes must
// fail decoding with a 500 (never a partial entry) and load cleanly
// once the corruption stops.
func TestChaosCorruptDictionaryRejected(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	mustConfigure(t, "dict-corrupt:1:9")
	resp, err := http.Get(ts.URL + "/v1/dicts/alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt dictionary answered %d, want 500", resp.StatusCode)
	}
	if s.cache.Contains("alpha") {
		t.Fatal("corrupt dictionary became resident")
	}

	fault.Reset()
	resp, err = http.Get(ts.URL + "/v1/dicts/alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean reload answered %d, want 200", resp.StatusCode)
	}
}

// TestChaosWorkerPanicContained: injected worker panics must answer
// the affected requests with 500, keep every pool worker alive, and
// leave the service fully functional once the fault clears.
func TestChaosWorkerPanicContained(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, func(c *Config) { c.Workers = 2 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	mustConfigure(t, "worker-panic:1:3")
	// More panicking requests than workers: if a panic killed its
	// worker, the pool would wedge before the loop finishes.
	for i := 0; i < 6; i++ {
		status, body := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
		if status != http.StatusInternalServerError {
			t.Fatalf("request %d under worker-panic: status = %d, body %s", i, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("panic response is not structured JSON: %v (%s)", err, body)
		}
	}
	if got := s.pool.Stats().Panics; got != 6 {
		t.Errorf("pool panics = %d, want 6", got)
	}

	fault.Reset()
	status, body := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusOK {
		t.Fatalf("status after panics cleared = %d, body %s (pool did not survive)", status, body)
	}
}

// TestChaosDegradedBatchDeterministic: with one dictionary resident
// and loads failing, a mixed batch answers the resident items and
// skip-and-reports the broken dictionary — byte-identically across
// repeated sends.
func TestChaosDegradedBatchDeterministic(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	// Warm alpha, then break every further load: beta becomes the
	// degraded member of the batch.
	if _, err := s.cache.Get("alpha"); err != nil {
		t.Fatal(err)
	}
	mustConfigure(t, "cache-load-error:1:5")

	item := func(id string) string {
		var req DiagnoseRequest
		if err := json.Unmarshal(diagnoseBody(t, id, "", 3), &req); err != nil {
			t.Fatal(err)
		}
		data, _ := json.Marshal(req)
		return string(data)
	}
	body := []byte(fmt.Sprintf(`{"requests":[%s,%s,%s]}`, item("alpha"), item("beta"), item("alpha")))

	send := func() (int, []byte) {
		resp, err := http.Post(ts.URL+"/v1/diagnose/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	status, first := send()
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", status, first)
	}
	var br BatchResponse
	if err := json.Unmarshal(first, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 || br.Failed != 1 {
		t.Fatalf("results/failed = %d/%d, want 3/1 (%s)", len(br.Results), br.Failed, first)
	}
	if br.Results[0].Status != http.StatusOK || br.Results[2].Status != http.StatusOK {
		t.Errorf("resident alpha items failed: %s", first)
	}
	if br.Results[1].Status != http.StatusInternalServerError || br.Results[1].Code != "load_failed" {
		t.Errorf("beta item = status %d code %q, want 500/load_failed", br.Results[1].Status, br.Results[1].Code)
	}
	if br.Results[1].Response != nil {
		t.Error("failed item carries a response")
	}

	for i := 0; i < 3; i++ {
		if _, again := send(); !bytes.Equal(first, again) {
			t.Fatalf("degraded batch is not byte-deterministic:\n%s\nvs\n%s", first, again)
		}
	}
}

// TestChaosDeadlineFreesWorkerSlot: a request whose deadline expires
// while its worker is stuck in a stalled load answers 504 with the
// machine-readable deadline contract, increments the cancellations
// counter, and — once the stall passes — the slot serves live traffic
// again.
func TestChaosDeadlineFreesWorkerSlot(t *testing.T) {
	defer fault.Reset()
	before := runtime.NumGoroutine()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.RequestTimeout = 100 * time.Millisecond
	})
	ts := httptest.NewServer(s.Handler())

	mustConfigure(t, "cache-load-stall:1:1:400")
	status, body := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled request answered %d, body %s, want 504", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "deadline" || eb.RetrySeconds < 1 {
		t.Errorf("504 body = %+v, want code deadline with retry hint", eb)
	}
	if got := s.cancellations.Load(); got < 1 {
		t.Errorf("cancellations = %d, want >= 1", got)
	}

	// Let the stalled load finish, clear the fault, and prove the one
	// worker slot is live again.
	fault.Reset()
	time.Sleep(500 * time.Millisecond)
	status, body = postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusOK {
		t.Fatalf("status after stall = %d, body %s (worker slot not freed)", status, body)
	}

	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Everything the chaos path spawned (workers, batch watchers,
	// stalled loads) must be gone after shutdown.
	waitGoroutines(t, before+2)
}

// TestChaosSlowHandlerTimesOut: the slow-handler site delays the
// handler past its own deadline, driving the pre-enqueue 504 path.
func TestChaosSlowHandlerTimesOut(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 50 * time.Millisecond })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	// Warm the cache so only the injected delay can slow the request.
	if _, err := s.cache.Get("alpha"); err != nil {
		t.Fatal(err)
	}
	mustConfigure(t, "slow-handler:1:2:200")
	start := time.Now()
	status, _ := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	// The sleep happens before the deadline starts ticking, so the
	// request takes injected delay + timeout, never less.
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Errorf("request returned after %v, before the injected delay elapsed", d)
	}
}

// TestStartSetsHTTPServerTimeouts is the regression test for the
// listener's transport protections: every timeout must be set, and
// the write deadline must outlive the request deadline.
func TestStartSetsHTTPServerTimeouts(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 45 * time.Second })
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()

	srv := s.httpSrv
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("timeouts not set: header %v read %v write %v idle %v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout < s.cfg.RequestTimeout {
		t.Errorf("WriteTimeout %v < RequestTimeout %v: the server would cut off slow-but-legal responses",
			srv.WriteTimeout, s.cfg.RequestTimeout)
	}
}

// TestChaosMetricsExposeFailureCounters: after a chaos run, /metrics
// carries the failure-path series with the values the run produced.
func TestChaosMetricsExposeFailureCounters(t *testing.T) {
	defer fault.Reset()
	s := newTestServer(t, func(c *Config) { c.LoadRetries = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Shutdown(context.Background()) }()

	mustConfigure(t, "cache-load-error:1:11")
	if status, _ := postDiagnose(t, ts.URL, diagnoseBody(t, "alpha", "", 3)); status != http.StatusInternalServerError {
		t.Fatalf("expected injected failure, got %d", status)
	}
	fault.Reset()
	mustConfigure(t, "worker-panic:1:11")
	if status, _ := postDiagnose(t, ts.URL, diagnoseBody(t, "beta", "", 3)); status != http.StatusInternalServerError {
		t.Fatalf("expected injected panic, got %d", status)
	}
	fault.Reset()

	vals := parseMetrics(t, scrapeMetrics(t, ts.URL))
	if got := vals[`ddd_retries_total`]; got != 1 {
		t.Errorf("ddd_retries_total = %v, want 1", got)
	}
	if got := vals[`ddd_pool_panics_total`]; got != 1 {
		t.Errorf("ddd_pool_panics_total = %v, want 1", got)
	}
	if got := vals[`ddd_faults_injected_total{site="cache-load-error"}`]; got < 2 {
		t.Errorf(`ddd_faults_injected_total{site="cache-load-error"} = %v, want >= 2`, got)
	}
	if got := vals[`ddd_faults_injected_total{site="worker-panic"}`]; got < 1 {
		t.Errorf(`ddd_faults_injected_total{site="worker-panic"} = %v, want >= 1`, got)
	}
	if _, ok := vals[`ddd_cancellations_total`]; !ok {
		t.Error("ddd_cancellations_total series missing from /metrics")
	}
}
