// Package service implements ddd-serve: a long-running HTTP/JSON
// daemon that diagnoses observed failing behaviors against precomputed
// compressed fault dictionaries. It is the repo's first serving-scale
// subsystem: the expensive statistical artifact (the dictionary) is
// characterized once offline by ddd-dict, and the service answers
// match queries against it from memory — the same precompute-then-
// reuse move hierarchical SSTA makes with timing macromodels.
//
// Architecture:
//
//   - a sharded LRU cache (cache.go) keeps hot dictionaries resident
//     under a byte budget, with singleflight load deduplication;
//   - a bounded worker pool (pool.go) executes diagnoses with
//     backpressure — a full queue answers 429 instead of queueing
//     unboundedly;
//   - a batcher (batch.go) coalesces concurrent requests against the
//     same dictionary into one pool job, fanned out over internal/par
//     with index-disjoint result slots;
//   - handlers (handlers.go) expose /v1/diagnose, /v1/dicts,
//     /v1/dicts/{id} and the ops surface /healthz, /readyz, /stats.
//
// Responses are byte-deterministic for identical requests: diagnosis
// ranking ties break on ascending arc ID, JSON fields marshal in
// declaration order, and no response depends on time, scheduling or
// map iteration.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/timing/engine"
)

// Fault injection sites (internal/fault). Disarmed they cost one
// atomic load each; armed via ddd-serve -faults / DDD_FAULTS they
// exercise the failure paths the chaos suite asserts on:
//
//   - cache-load-error: the cache loader fails before touching disk
//     (param unused) — drives the singleflight error path and retries;
//   - cache-load-stall: the loader sleeps param milliseconds
//     (default 100) before loading — widens the singleflight window;
//   - dict-corrupt: the dictionary bytes are corrupted in flight, so
//     the strict decoder fails — a torn-read stand-in;
//   - worker-panic: a batch worker panics mid-diagnosis — drives the
//     pool's panic containment;
//   - slow-handler: the diagnose handlers sleep param milliseconds
//     (default 100) before enqueueing — drives deadline expiry.
var (
	faultCacheLoadError = fault.Register("cache-load-error")
	faultCacheLoadStall = fault.Register("cache-load-stall")
	faultDictCorrupt    = fault.Register("dict-corrupt")
	faultWorkerPanic    = fault.Register("worker-panic")
	faultSlowHandler    = fault.Register("slow-handler")
)

// errInjectedLoad marks a cache-load-error injection. It is not
// fs.ErrNotExist, so the cache treats it as transient and retries it
// like a real I/O blip.
var errInjectedLoad = errors.New("injected fault: cache-load-error")

// Config parameterizes a Server.
type Config struct {
	// Dir is the dictionary directory: id <-> <Dir>/<id>.dict.
	Dir string
	// CacheBytes bounds resident dictionary bytes (default 256 MiB).
	CacheBytes int64
	// CacheShards is the cache shard count (default 8).
	CacheShards int
	// Workers is the diagnosis worker count (default NumCPU).
	Workers int
	// QueueDepth bounds the worker queue; a full queue sheds load with
	// 429 (default 64).
	QueueDepth int
	// BatchWorkers bounds the par.For fan-out inside one batch
	// (default min(4, NumCPU)).
	BatchWorkers int
	// RequestTimeout is the per-request deadline (default 10s). It
	// covers queueing plus execution: when it expires the handler
	// answers 504 with code "deadline" and the worker skips the job the
	// moment it notices, freeing the slot for live requests.
	RequestTimeout time.Duration
	// LoadRetries is how many times a failing dictionary load is
	// retried (with capped exponential backoff) inside one cache get
	// before the error is returned. Not-found is never retried.
	// Default 0: retries are opt-in via ddd-serve -load-retries.
	LoadRetries int
	// Preload lists dictionary ids to load before the server reports
	// ready.
	Preload []string
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU, so the operator
	// opts in (ddd-serve -pprof).
	EnablePprof bool
	// Engine names the timing backend this deployment builds its
	// dictionaries with (engine.Names(); "" means the default). The
	// service itself diagnoses against precomputed dictionaries and
	// never runs timing, but operators correlate served results with
	// build provenance, so the name is validated at startup and
	// surfaced in /stats.
	Engine string
}

func (cfg *Config) applyDefaults() {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = min(4, runtime.NumCPU())
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Engine == "" {
		cfg.Engine = engine.DefaultName
	}
}

// Server is the diagnosis service: cache + pool + batcher + mux.
type Server struct {
	cfg       Config
	cache     *Cache
	pool      *Pool
	batch     *batcher
	mux       *http.ServeMux
	endpoints map[string]*epStats
	metrics   *serverMetrics
	ready     atomic.Bool
	// cancellations counts requests abandoned at their deadline or by
	// client disconnect — the handler answered 504 (or the worker
	// skipped the job) and the slot went back to live traffic. Feeds
	// ddd_cancellations_total.
	cancellations atomic.Int64

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server over cfg.Dir. The directory must exist; the
// dictionaries inside it are loaded lazily (or via Warmup).
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if !engine.Known(cfg.Engine) {
		return nil, fmt.Errorf("service: unknown engine %q (have %v)", cfg.Engine, engine.Names())
	}
	fi, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("service: dictionary directory: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("service: %s is not a directory", cfg.Dir)
	}
	s := &Server{cfg: cfg}
	s.cache = NewCache(s.loadFromDisk, cfg.CacheBytes, cfg.CacheShards)
	s.cache.SetLoadRetries(cfg.LoadRetries)
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth)
	s.batch = newBatcher(s.pool, s.runBatch)
	s.endpoints = map[string]*epStats{
		"/v1/diagnose":            {},
		"/v1/diagnose/batch":      {},
		"/v1/dicts":               {},
		"/v1/dicts/{id}":          {},
		"/v1/dicts/{id}/snapshot": {},
		"/healthz":                {},
		"/readyz":                 {},
		"/stats":                  {},
	}
	s.metrics = newServerMetrics(s)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/diagnose", s.instrument("/v1/diagnose", s.handleDiagnose))
	mux.HandleFunc("POST /v1/diagnose/batch", s.instrument("/v1/diagnose/batch", s.handleDiagnoseBatch))
	mux.HandleFunc("GET /v1/dicts", s.instrument("/v1/dicts", s.handleDicts))
	mux.HandleFunc("GET /v1/dicts/{id}", s.instrument("/v1/dicts/{id}", s.handleDictInfo))
	mux.HandleFunc("GET /v1/dicts/{id}/snapshot", s.instrument("/v1/dicts/{id}/snapshot", s.handleSnapshotGet))
	mux.HandleFunc("PUT /v1/dicts/{id}/snapshot", s.instrument("/v1/dicts/{id}/snapshot", s.handleSnapshotPut))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	// /metrics is not instrumented: a scrape must not change the next
	// scrape's output (idle scrapes stay byte-identical).
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	if len(cfg.Preload) == 0 {
		s.ready.Store(true)
	}
	return s, nil
}

// loadFromDisk is the cache loader: decode <dir>/<id>.dict. The size
// accounts the sparse entries plus the pattern/suspect overhead so the
// cache budget tracks real residency.
func (s *Server) loadFromDisk(id string) (*Entry, error) {
	if faultCacheLoadStall.Hit() {
		time.Sleep(time.Duration(faultCacheLoadStall.Param(100)) * time.Millisecond)
	}
	if faultCacheLoadError.Hit() {
		return nil, fmt.Errorf("dictionary %q: %w", id, errInjectedLoad)
	}
	f, err := os.Open(filepath.Join(s.cfg.Dir, id+".dict"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Don't leak the server-side path in the 404 body.
			return nil, fmt.Errorf("dictionary %q not found: %w", id, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("dictionary %q: %w", id, err)
	}
	defer f.Close()
	var src io.Reader = f
	if faultDictCorrupt.Hit() {
		src = fault.NewCorruptingReader(f)
	}
	cd, nIn, err := core.LoadCompressed(src)
	if err != nil {
		return nil, fmt.Errorf("dictionary %q: %w", id, err)
	}
	size := int64(cd.Bytes()) +
		int64(len(cd.Patterns))*int64(2*nIn+32) + // two bool vectors + headers
		int64(len(cd.Suspects))*4 + 256
	return &Entry{ID: id, Dict: cd, NInputs: nIn, Size: size}, nil
}

// runBatch executes one same-dictionary batch on a pool worker: one
// cache lookup, then the batch fans out over par.For with each request
// writing only its own job (index-disjoint slots).
//
// Failure containment: a panic anywhere in the batch (including the
// worker-panic injection site) first fails-and-finishes every job that
// has not answered yet — no handler is ever left waiting on a dead
// batch — then re-panics so the pool worker's recover counts it. The
// cache load runs under a context that dies when every requester in
// the batch has given up, so an abandoned batch stops burning its
// worker slot on a load nobody will read.
func (s *Server) runBatch(id string, jobs []*diagJob) {
	defer func() {
		if r := recover(); r != nil {
			for _, j := range jobs {
				if !j.finished.Load() {
					j.fail(http.StatusInternalServerError, "internal worker failure")
					j.finish()
				}
			}
			panic(r)
		}
	}()
	ctx, cancel := batchContext(jobs)
	defer cancel()
	ent, err := s.cache.GetCtx(ctx, id)
	if err != nil {
		status, msg := loadErrStatus(err), err.Error()
		if ctx.Err() != nil {
			// Every requester is gone; the statuses are written only so
			// the jobs carry a consistent terminal state. The handlers
			// count the cancellations — each observed its own deadline.
			status, msg = http.StatusGatewayTimeout, "request deadline exceeded"
		}
		for _, j := range jobs {
			j.fail(status, msg)
			j.finish()
		}
		return
	}
	par.For(len(jobs), s.cfg.BatchWorkers, func(i int) {
		j := jobs[i]
		if j.ctx.Err() != nil {
			// The requester already timed out; skip the compute and
			// give the slot back to live traffic. The handler counted
			// the cancellation when it answered 504.
			j.fail(http.StatusGatewayTimeout, "request deadline exceeded")
		} else if faultWorkerPanic.Hit() {
			panic(fmt.Sprintf("injected fault: worker-panic (dict %s)", id))
		} else if resp, status, msg := diagnoseOne(ent, j.req); status != 0 {
			j.fail(status, msg)
		} else {
			j.resp = resp
		}
		j.finish()
	})
}

// batchContext returns a context that is cancelled once every job's
// request context is done — the batch-wide "anybody still listening?"
// signal guarding the shared cache load. The watcher goroutine drains
// as soon as all requesters cancel (every handler defers its cancel),
// so it cannot leak past the requests it watches.
func batchContext(jobs []*diagJob) (context.Context, context.CancelFunc) {
	if len(jobs) == 1 {
		return jobs[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for _, j := range jobs {
			<-j.ctx.Done()
		}
		cancel()
	}()
	return ctx, cancel
}

// Warmup loads every preload dictionary and marks the server ready.
// An error leaves the server unready (readyz stays 503).
func (s *Server) Warmup(ctx context.Context) error {
	for _, id := range s.cfg.Preload {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !validID(id) {
			return fmt.Errorf("service: invalid preload id %q", id)
		}
		if _, err := s.cache.GetCtx(ctx, id); err != nil {
			return fmt.Errorf("service: preload %q: %w", id, err)
		}
	}
	s.ready.Store(true)
	return nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Transport-level protections for the listener: a slow or stalled
// client must never hold a connection (and its handler goroutine)
// open indefinitely. Write/idle deadlines scale off the request
// timeout in Start; these are the floors.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	minWriteTimeout   = 60 * time.Second
	idleTimeout       = 120 * time.Second
)

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background; use Addr for the bound address and Shutdown to stop.
// The http.Server carries the full timeout set — header read, body
// read, response write, keep-alive idle — so a stalled client is a
// closed connection, not a leaked goroutine (slowloris protection).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The write deadline must outlive the request deadline, or the
	// server would cut off a response the worker legitimately spent
	// RequestTimeout computing.
	writeTimeout := 2 * s.cfg.RequestTimeout
	if writeTimeout < minWriteTimeout {
		writeTimeout = minWriteTimeout
	}
	s.ln = ln
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: stop accepting connections,
// wait for in-flight handlers (bounded by ctx), then drain the worker
// pool so every accepted request gets its response before the workers
// exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Drain()
	return err
}
