// Package service implements ddd-serve: a long-running HTTP/JSON
// daemon that diagnoses observed failing behaviors against precomputed
// compressed fault dictionaries. It is the repo's first serving-scale
// subsystem: the expensive statistical artifact (the dictionary) is
// characterized once offline by ddd-dict, and the service answers
// match queries against it from memory — the same precompute-then-
// reuse move hierarchical SSTA makes with timing macromodels.
//
// Architecture:
//
//   - a sharded LRU cache (cache.go) keeps hot dictionaries resident
//     under a byte budget, with singleflight load deduplication;
//   - a bounded worker pool (pool.go) executes diagnoses with
//     backpressure — a full queue answers 429 instead of queueing
//     unboundedly;
//   - a batcher (batch.go) coalesces concurrent requests against the
//     same dictionary into one pool job, fanned out over internal/par
//     with index-disjoint result slots;
//   - handlers (handlers.go) expose /v1/diagnose, /v1/dicts,
//     /v1/dicts/{id} and the ops surface /healthz, /readyz, /stats.
//
// Responses are byte-deterministic for identical requests: diagnosis
// ranking ties break on ascending arc ID, JSON fields marshal in
// declaration order, and no response depends on time, scheduling or
// map iteration.
package service

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// Config parameterizes a Server.
type Config struct {
	// Dir is the dictionary directory: id <-> <Dir>/<id>.dict.
	Dir string
	// CacheBytes bounds resident dictionary bytes (default 256 MiB).
	CacheBytes int64
	// CacheShards is the cache shard count (default 8).
	CacheShards int
	// Workers is the diagnosis worker count (default NumCPU).
	Workers int
	// QueueDepth bounds the worker queue; a full queue sheds load with
	// 429 (default 64).
	QueueDepth int
	// BatchWorkers bounds the par.For fan-out inside one batch
	// (default min(4, NumCPU)).
	BatchWorkers int
	// RequestTimeout is the per-request deadline (default 10s).
	RequestTimeout time.Duration
	// Preload lists dictionary ids to load before the server reports
	// ready.
	Preload []string
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU, so the operator
	// opts in (ddd-serve -pprof).
	EnablePprof bool
}

func (cfg *Config) applyDefaults() {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = min(4, runtime.NumCPU())
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
}

// Server is the diagnosis service: cache + pool + batcher + mux.
type Server struct {
	cfg       Config
	cache     *Cache
	pool      *Pool
	batch     *batcher
	mux       *http.ServeMux
	endpoints map[string]*epStats
	metrics   *serverMetrics
	ready     atomic.Bool

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a server over cfg.Dir. The directory must exist; the
// dictionaries inside it are loaded lazily (or via Warmup).
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	fi, err := os.Stat(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("service: dictionary directory: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("service: %s is not a directory", cfg.Dir)
	}
	s := &Server{cfg: cfg}
	s.cache = NewCache(s.loadFromDisk, cfg.CacheBytes, cfg.CacheShards)
	s.pool = NewPool(cfg.Workers, cfg.QueueDepth)
	s.batch = newBatcher(s.pool, s.runBatch)
	s.endpoints = map[string]*epStats{
		"/v1/diagnose":   {},
		"/v1/dicts":      {},
		"/v1/dicts/{id}": {},
		"/healthz":       {},
		"/readyz":        {},
		"/stats":         {},
	}
	s.metrics = newServerMetrics(s)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/diagnose", s.instrument("/v1/diagnose", s.handleDiagnose))
	mux.HandleFunc("GET /v1/dicts", s.instrument("/v1/dicts", s.handleDicts))
	mux.HandleFunc("GET /v1/dicts/{id}", s.instrument("/v1/dicts/{id}", s.handleDictInfo))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	// /metrics is not instrumented: a scrape must not change the next
	// scrape's output (idle scrapes stay byte-identical).
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	if len(cfg.Preload) == 0 {
		s.ready.Store(true)
	}
	return s, nil
}

// loadFromDisk is the cache loader: decode <dir>/<id>.dict. The size
// accounts the sparse entries plus the pattern/suspect overhead so the
// cache budget tracks real residency.
func (s *Server) loadFromDisk(id string) (*Entry, error) {
	f, err := os.Open(filepath.Join(s.cfg.Dir, id+".dict"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Don't leak the server-side path in the 404 body.
			return nil, fmt.Errorf("dictionary %q not found: %w", id, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("dictionary %q: %w", id, err)
	}
	defer f.Close()
	cd, nIn, err := core.LoadCompressed(f)
	if err != nil {
		return nil, fmt.Errorf("dictionary %q: %w", id, err)
	}
	size := int64(cd.Bytes()) +
		int64(len(cd.Patterns))*int64(2*nIn+32) + // two bool vectors + headers
		int64(len(cd.Suspects))*4 + 256
	return &Entry{ID: id, Dict: cd, NInputs: nIn, Size: size}, nil
}

// runBatch executes one same-dictionary batch on a pool worker: one
// cache lookup, then the batch fans out over par.For with each request
// writing only its own job (index-disjoint slots).
func (s *Server) runBatch(id string, jobs []*diagJob) {
	ent, err := s.cache.Get(id)
	if err != nil {
		status, msg := loadErrStatus(err), err.Error()
		for _, j := range jobs {
			j.fail(status, msg)
			close(j.done)
		}
		return
	}
	par.For(len(jobs), s.cfg.BatchWorkers, func(i int) {
		j := jobs[i]
		if j.ctx.Err() != nil {
			// The requester already timed out; skip the compute.
			j.fail(http.StatusGatewayTimeout, "request deadline exceeded")
		} else if resp, status, msg := diagnoseOne(ent, j.req); status != 0 {
			j.fail(status, msg)
		} else {
			j.resp = resp
		}
		close(j.done)
	})
}

// Warmup loads every preload dictionary and marks the server ready.
// An error leaves the server unready (readyz stays 503).
func (s *Server) Warmup(ctx context.Context) error {
	for _, id := range s.cfg.Preload {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !validID(id) {
			return fmt.Errorf("service: invalid preload id %q", id)
		}
		if _, err := s.cache.Get(id); err != nil {
			return fmt.Errorf("service: preload %q: %w", id, err)
		}
	}
	s.ready.Store(true)
	return nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the
// background; use Addr for the bound address and Shutdown to stop.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server gracefully: stop accepting connections,
// wait for in-flight handlers (bounded by ctx), then drain the worker
// pool so every accepted request gets its response before the workers
// exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.pool.Drain()
	return err
}
