package service

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmittedJobs(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Drain()
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10 jobs", ran.Load())
	}
	st := p.Stats()
	if st.Submitted != 10 || st.Completed != 10 || st.Rejected != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoolBackpressure(t *testing.T) {
	// One worker blocked on a gate, queue of 2: the 4th submit must be
	// rejected with ErrPoolBusy, not block.
	gate := make(chan struct{})
	p := NewPool(1, 2)
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to take the first job off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(p.jobs) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if err := p.Submit(func() {}); err != nil {
			t.Fatalf("queue slot %d rejected: %v", i, err)
		}
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolBusy) {
		t.Errorf("overfull submit err = %v, want ErrPoolBusy", err)
	}
	if p.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", p.Stats().Rejected)
	}
	close(gate)
	p.Drain()
}

func TestPoolDrainRunsQueuedJobsAndRejectsNew(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(1, 8)
	var ran atomic.Int64
	if err := p.Submit(func() { <-gate; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { p.Drain(); close(done) }()
	close(gate)
	<-done
	if ran.Load() != 6 {
		t.Errorf("drain completed %d of 6 accepted jobs", ran.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolDraining) {
		t.Errorf("post-drain submit err = %v, want ErrPoolDraining", err)
	}
	p.Drain() // second drain is a no-op
}
