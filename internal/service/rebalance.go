package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
)

// Automatic dictionary rebalance: the slow-twitch half of the
// self-healing tier. Whenever the membership view changes (health
// transition, admin join/leave, replicas-file reload) the rebalancer
// reconciles reality against the new ring's desired placement:
//
//  1. inventory — ask every live replica GET /v1/dicts for what it has
//     on disk;
//  2. plan — for each known dictionary whose ring owner does NOT have
//     it, pick a source (the first live replica after the owner in
//     ring order that has the file — for a fresh join that is exactly
//     the previous owner, by the ring's successor property) and record
//     an overlay entry so requests keep routing to the warm source;
//  3. transfer — drive the SHA-256-verified snapshot transfer
//     (snapshot.go) source → owner with bounded concurrency and capped
//     deterministic-jitter retries, clearing each overlay entry as its
//     dictionary lands.
//
// The reconcile is a pure function of observable state, which buys the
// properties the tentpole demands for free:
//
//   - idempotent — re-running against a converged tier plans zero
//     transfers (the owner already has every file);
//   - restart-safe — a router restart reconciles from scratch, so an
//     interrupted rebalance resumes wherever the tier actually is. The
//     journal (JSONL, plan/done/failed records) both documents
//     progress for operators and tells a restarted router to kick an
//     immediate reconcile when its tail holds planned-but-unfinished
//     transfers;
//   - degradation-bounded — between the ring swap and a dictionary's
//     transfer completing, the overlay (plus the router's 404
//     failover) proxies requests to the old owner, so the tier answers
//     correctly the whole time, just without the new owner's cache
//     warmth.
const (
	defaultRebalanceWorkers = 2
	defaultRebalanceRetries = 3
)

// transferBackoff paces per-transfer retries; reconcileBackoff paces
// whole-reconcile re-runs after an incomplete pass (a replica's
// inventory was unreachable or a transfer exhausted its retries).
var (
	transferBackoff  = retry.Backoff{Base: 50 * time.Millisecond, Max: time.Second}
	reconcileBackoff = retry.Backoff{Base: 200 * time.Millisecond, Max: 5 * time.Second}
)

// transferRecord is one journal line.
type transferRecord struct {
	Gen    uint64 `json:"gen"`
	Status string `json:"status"` // "plan" | "done" | "failed"
	Dict   string `json:"dict"`
	From   string `json:"from"`
	To     string `json:"to"`
	Sha    string `json:"sha256,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
	Error  string `json:"error,omitempty"`
}

// RebalanceStats is the rebalance slice of RouterStats.
type RebalanceStats struct {
	// Generation counts reconcile passes started.
	Generation uint64 `json:"generation"`
	// Pending is the current pass's transfers not yet finished.
	Pending int `json:"pending"`
	// Completed / Failed / Unsourced are lifetime transfer outcomes
	// (Unsourced: no live replica had the dictionary to copy from).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Unsourced int64 `json:"unsourced"`
	// Overlay is how many dictionaries currently route to a warm
	// source instead of their ring owner.
	Overlay int `json:"overlay"`
}

type rebalancer struct {
	rt      *Router
	workers int
	retries int

	ctx    context.Context
	cancel context.CancelFunc
	kick   chan struct{}
	done   chan struct{}

	journalMu sync.Mutex
	journalF  *os.File

	mu      sync.Mutex
	overlay map[string]string // dict id -> warm source replica
	pending int

	gen       atomic.Uint64
	completed atomic.Int64
	failed    atomic.Int64
	unsourced atomic.Int64

	// resume is set when the journal tail holds planned-but-unfinished
	// transfers from a previous process: start() kicks immediately.
	resume bool
}

func newRebalancer(rt *Router) (*rebalancer, error) {
	cfg := rt.cfg
	workers := cfg.RebalanceWorkers
	if workers <= 0 {
		workers = defaultRebalanceWorkers
	}
	retries := cfg.RebalanceRetries
	if retries < 0 {
		retries = defaultRebalanceRetries
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &rebalancer{
		rt:      rt,
		workers: workers,
		retries: retries,
		ctx:     ctx,
		cancel:  cancel,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		overlay: make(map[string]string),
	}
	if cfg.JournalPath != "" {
		r.resume = replayJournal(cfg.JournalPath)
		f, err := os.OpenFile(cfg.JournalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("service: rebalance journal: %w", err)
		}
		r.journalF = f
	}
	return r, nil
}

// replayJournal reports whether the journal at path ends with planned
// transfers that never reached a done/failed record — the signature of
// a rebalance interrupted by a router restart. Unreadable or torn
// journals parse tolerantly: scanning stops at the first malformed
// line (a torn tail from a crash mid-append).
func replayJournal(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	open := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec transferRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break
		}
		key := rec.Dict + "\x00" + rec.To
		switch rec.Status {
		case "plan":
			open[key] = true
		case "done", "failed":
			delete(open, key)
		}
	}
	return len(open) > 0
}

// start launches the reconcile loop. The initial kick fires when the
// journal demands a resume or the router runs active health checking
// (self-healing deployments converge on boot; static test routers stay
// quiet until an admin change kicks them).
func (r *rebalancer) start(initialKick bool) {
	go r.loop()
	if initialKick || r.resume {
		r.Kick()
	}
}

// Kick requests a reconcile. Coalescing is free: the channel holds one
// pending kick, and a reconcile already running re-observes membership
// when the queued kick drains.
func (r *rebalancer) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// stopAll cancels in-flight transfers, stops the loop, and closes the
// journal.
func (r *rebalancer) stopAll() {
	r.cancel()
	<-r.done
	r.journalMu.Lock()
	if r.journalF != nil {
		_ = r.journalF.Close()
		r.journalF = nil
	}
	r.journalMu.Unlock()
}

func (r *rebalancer) loop() {
	defer close(r.done)
	failStreak := 0
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-r.kick:
		}
		if r.reconcile() {
			// Incomplete pass: self-rekick with capped backoff so a
			// transient failure converges without an operator and a
			// persistent one does not spin.
			failStreak++
			select {
			case <-r.ctx.Done():
				return
			case <-time.After(reconcileBackoff.Delay("reconcile", failStreak-1)):
				r.Kick()
			}
		} else {
			failStreak = 0
		}
	}
}

// redirect returns the warm source for key while its owner is cold.
func (r *rebalancer) redirect(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.overlay[key]
	return src, ok
}

// drainingSources lists overlay sources that are no longer members —
// replicas an operator removed that the tier still reads from while
// their dictionaries move.
func (r *rebalancer) drainingSources() []string {
	members := make(map[string]bool)
	for _, url := range r.rt.ms.MemberURLs() {
		members[url] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, src := range r.overlay {
		if !members[src] && !seen[src] {
			seen[src] = true
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

func (r *rebalancer) stats() RebalanceStats {
	r.mu.Lock()
	overlay, pending := len(r.overlay), r.pending
	r.mu.Unlock()
	return RebalanceStats{
		Generation: r.gen.Load(),
		Pending:    pending,
		Completed:  r.completed.Load(),
		Failed:     r.failed.Load(),
		Unsourced:  r.unsourced.Load(),
		Overlay:    overlay,
	}
}

func (r *rebalancer) journal(rec transferRecord) {
	r.journalMu.Lock()
	defer r.journalMu.Unlock()
	if r.journalF == nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := r.journalF.Write(append(data, '\n')); err == nil {
		_ = r.journalF.Sync()
	}
}

// listDicts asks one replica for its on-disk dictionary inventory.
func (r *rebalancer) listDicts(replica string) (map[string]bool, error) {
	ctx, cancel := context.WithTimeout(r.ctx, defaultHealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/v1/dicts", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: %s/v1/dicts: status %d", replica, resp.StatusCode)
	}
	var doc struct {
		Dicts []struct {
			ID string `json:"id"`
		} `json:"dicts"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	has := make(map[string]bool, len(doc.Dicts))
	for _, d := range doc.Dicts {
		has[d.ID] = true
	}
	return has, nil
}

// rebalanceMove is one planned transfer.
type rebalanceMove struct {
	id   string
	from string
	to   string
}

// reconcile runs one convergence pass; it reports whether the pass was
// incomplete (an inventory was unreachable or a transfer failed) and
// should be retried.
func (r *rebalancer) reconcile() (incomplete bool) {
	gen := r.gen.Add(1)
	live := r.rt.ms.Live()
	if len(live) == 0 {
		return true
	}
	ring := r.rt.ms.Ring()

	// Inventory. A replica whose listing fails contributes nothing
	// this round; dictionaries it owns are re-examined on the rekick.
	has := make(map[string]map[string]bool, len(live))
	union := make(map[string]bool)
	for _, rep := range live {
		ids, err := r.listDicts(rep)
		if err != nil {
			incomplete = true
			continue
		}
		has[rep] = ids
		for id := range ids {
			union[id] = true
		}
	}
	ids := make([]string, 0, len(union))
	for id := range union {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	// Plan: owner lacks the file -> move it there from the first live
	// holder after the owner in ring order (the previous owner, when
	// the gap came from a join).
	var moves []rebalanceMove
	overlay := make(map[string]string)
	for _, id := range ids {
		owner := ring.Owner(id)
		inv, known := has[owner]
		if !known {
			incomplete = true
			continue
		}
		if inv[id] {
			continue
		}
		src := ""
		for _, cand := range ring.Owners(id, len(live)) {
			if cand != owner && has[cand] != nil && has[cand][id] {
				src = cand
				break
			}
		}
		if src == "" {
			r.unsourced.Add(1)
			continue
		}
		overlay[id] = src
		moves = append(moves, rebalanceMove{id: id, from: src, to: owner})
	}

	// Swap the overlay before any transfer starts: from here on, a
	// moved dictionary routes to its warm source, and entries for
	// dictionaries that converged since the last pass are dropped.
	r.mu.Lock()
	r.overlay = overlay
	r.pending = len(moves)
	r.mu.Unlock()

	for _, m := range moves {
		r.journal(transferRecord{Gen: gen, Status: "plan", Dict: m.id, From: m.from, To: m.to})
	}

	// Transfer with bounded concurrency.
	sem := make(chan struct{}, r.workers)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for _, m := range moves {
		m := m
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			var n int
			var sha string
			err := retry.Do(r.ctx, transferBackoff, m.id, 1+r.retries, func() error {
				var terr error
				n, sha, terr = TransferSnapshot(r.ctx, r.rt.cfg.Client, m.from, m.to, m.id)
				return terr
			})
			r.mu.Lock()
			r.pending--
			if err == nil {
				delete(r.overlay, m.id)
			}
			r.mu.Unlock()
			if err != nil {
				failures.Add(1)
				r.failed.Add(1)
				r.journal(transferRecord{Gen: gen, Status: "failed", Dict: m.id, From: m.from, To: m.to, Error: err.Error()})
				return
			}
			r.completed.Add(1)
			r.journal(transferRecord{Gen: gen, Status: "done", Dict: m.id, From: m.from, To: m.to, Sha: sha, Bytes: n})
			// The new owner has the bytes but a cold cache; invalidate
			// nothing here — its next request loads the file.
		}()
	}
	wg.Wait()
	return incomplete || failures.Load() > 0
}
