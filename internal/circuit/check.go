package circuit

import "fmt"

// Check validates structural invariants of a built circuit. Builders
// guarantee these by construction; Check exists so that tests,
// generators, and parsers can assert integrity after transformation.
func (c *Circuit) Check() error {
	if len(c.Inputs) == 0 {
		return fmt.Errorf("circuit %q: no inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("circuit %q: no outputs", c.Name)
	}
	attached := make([]bool, len(c.Arcs))
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.ID != GateID(i) {
			return fmt.Errorf("gate %d has ID %d", i, g.ID)
		}
		n := len(g.Fanin)
		if n < g.Type.MinFanin() || (g.Type.MaxFanin() >= 0 && n > g.Type.MaxFanin()) {
			return fmt.Errorf("gate %q (%v) has illegal fan-in %d", g.Name, g.Type, n)
		}
		if len(g.InArcs) != n {
			return fmt.Errorf("gate %q: %d in-arcs for %d fan-ins", g.Name, len(g.InArcs), n)
		}
		for k, a := range g.InArcs {
			if a < 0 || int(a) >= len(c.Arcs) {
				return fmt.Errorf("gate %q pin %d: arc id %d out of range", g.Name, k, a)
			}
			if attached[a] {
				return fmt.Errorf("arc %d attached to more than one input pin", a)
			}
			attached[a] = true
			arc := c.Arcs[a]
			if arc.To != g.ID || arc.Pin != k || arc.From != g.Fanin[k] {
				return fmt.Errorf("gate %q pin %d: inconsistent arc %+v", g.Name, k, arc)
			}
		}
		if g.Type == DFF {
			return fmt.Errorf("gate %q: DFF survives in a built circuit; scan conversion required", g.Name)
		}
	}
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if a.ID != ArcID(i) {
			return fmt.Errorf("arc %d has ID %d", i, a.ID)
		}
		if a.From < 0 || int(a.From) >= len(c.Gates) || a.To < 0 || int(a.To) >= len(c.Gates) {
			return fmt.Errorf("arc %d endpoints out of range: %+v", i, a)
		}
		if !attached[i] {
			return fmt.Errorf("dangling arc %d (%+v): not attached to any input pin", i, *a)
		}
	}
	if len(c.Order) != len(c.Gates) {
		return fmt.Errorf("order covers %d of %d gates", len(c.Order), len(c.Gates))
	}
	// Topological property: every gate appears after all its fan-ins.
	pos := make([]int, len(c.Gates))
	for p, g := range c.Order {
		pos[g] = p
	}
	for i := range c.Gates {
		for _, fi := range c.Gates[i].Fanin {
			if pos[fi] >= pos[i] {
				return fmt.Errorf("order violates precedence: %q before its fan-in %q",
					c.Gates[i].Name, c.Gates[fi].Name)
			}
		}
	}
	for _, in := range c.Inputs {
		if c.Gates[in].Type != Input {
			return fmt.Errorf("input list contains non-Input gate %q", c.Gates[in].Name)
		}
	}
	for _, out := range c.Outputs {
		if c.Gates[out].Type != Output {
			return fmt.Errorf("output list contains non-Output gate %q", c.Gates[out].Name)
		}
	}
	return nil
}

// Stats summarizes a circuit's size and shape.
type Stats struct {
	Gates   int // all gates including port gates
	Logic   int // gates excluding Input/Output port gates
	Arcs    int
	Inputs  int
	Outputs int
	Depth   int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates:   len(c.Gates),
		Arcs:    len(c.Arcs),
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Depth:   c.Depth(),
	}
	for i := range c.Gates {
		switch c.Gates[i].Type {
		case Input, Output:
		default:
			s.Logic++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("gates=%d logic=%d arcs=%d PI=%d PO=%d depth=%d",
		s.Gates, s.Logic, s.Arcs, s.Inputs, s.Outputs, s.Depth)
}
