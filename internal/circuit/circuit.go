package circuit

import (
	"fmt"
	"sort"
)

// GateID indexes a gate within a Circuit.
type GateID int32

// ArcID indexes a pin-to-pin arc within a Circuit. Arcs are the
// elements of the paper's edge set E: each carries one delay random
// variable in the circuit model, one fixed delay in a circuit instance,
// and is the unit of defect location in the segment-oriented defect
// model (Definition D.9).
type ArcID int32

// NoGate is the invalid gate sentinel.
const NoGate GateID = -1

// Gate is one cell instance (vertex of the circuit DAG).
type Gate struct {
	ID     GateID
	Name   string
	Type   CellType
	Fanin  []GateID // ordered input drivers
	Fanout []GateID // gates reading this gate's output
	InArcs []ArcID  // InArcs[k] is the arc into input pin k
}

// Arc is a pin-to-pin timing edge: the path from gate From's output,
// through the interconnect, through input pin Pin of gate To, to gate
// To's output. Its delay aggregates wire delay and the cell's
// pin-to-pin delay, matching the cell-based statistical model of [5].
type Arc struct {
	ID   ArcID
	From GateID
	To   GateID
	Pin  int // input pin index on To
}

// Circuit is an immutable combinational (after scan conversion)
// gate-level netlist with its topological metadata precomputed.
type Circuit struct {
	Name    string
	Gates   []Gate
	Arcs    []Arc
	Inputs  []GateID // primary + pseudo-primary inputs, in declaration order
	Outputs []GateID // primary + pseudo-primary outputs, in declaration order
	Order   []GateID // a topological order over all gates
	Levels  []int    // Levels[g] = longest distance (in arcs) from any input

	byName map[string]GateID
}

// Builder incrementally constructs a Circuit. Gates may be declared in
// any order; fan-in references are resolved by name at Build time.
type Builder struct {
	name    string
	gates   []builderGate
	inputs  []string
	outputs []string
	index   map[string]int
}

type builderGate struct {
	name  string
	typ   CellType
	fanin []string
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, index: make(map[string]int)}
}

// AddInput declares a primary input named name.
func (b *Builder) AddInput(name string) error {
	if err := b.declare(name, Input, nil); err != nil {
		return err
	}
	b.inputs = append(b.inputs, name)
	return nil
}

// MarkOutput declares that the named signal is a primary output. The
// signal itself may be declared before or after this call.
func (b *Builder) MarkOutput(name string) {
	b.outputs = append(b.outputs, name)
}

// AddGate declares a gate computing typ over the named fan-in signals.
func (b *Builder) AddGate(name string, typ CellType, fanin ...string) error {
	return b.declare(name, typ, fanin)
}

func (b *Builder) declare(name string, typ CellType, fanin []string) error {
	if name == "" {
		return fmt.Errorf("circuit: empty gate name")
	}
	if _, dup := b.index[name]; dup {
		return fmt.Errorf("circuit: duplicate signal %q", name)
	}
	if n := len(fanin); n < typ.MinFanin() || (typ.MaxFanin() >= 0 && n > typ.MaxFanin()) {
		return fmt.Errorf("circuit: %v gate %q has %d inputs", typ, name, n)
	}
	b.index[name] = len(b.gates)
	b.gates = append(b.gates, builderGate{name: name, typ: typ, fanin: fanin})
	return nil
}

// Build resolves all references, scan-converts DFFs if scanConvert is
// set (each DFF output becomes a pseudo-primary input and each DFF data
// input a pseudo-primary output, the standard full-scan view used for
// delay test), verifies acyclicity, and returns the finished Circuit.
func (b *Builder) Build(scanConvert bool) (*Circuit, error) {
	gates := b.gates
	inputs := append([]string(nil), b.inputs...)
	outputs := append([]string(nil), b.outputs...)

	if scanConvert {
		var err error
		gates, inputs, outputs, err = b.scanConvert()
		if err != nil {
			return nil, err
		}
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no inputs", b.name)
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no outputs", b.name)
	}

	index := make(map[string]int, len(gates))
	for i, g := range gates {
		if _, dup := index[g.name]; dup {
			return nil, fmt.Errorf("circuit: duplicate signal %q", g.name)
		}
		index[g.name] = i
	}

	c := &Circuit{
		Name:   b.name,
		Gates:  make([]Gate, 0, len(gates)+len(outputs)),
		byName: make(map[string]GateID, len(gates)+len(outputs)),
	}
	for _, g := range gates {
		id := GateID(len(c.Gates))
		c.Gates = append(c.Gates, Gate{ID: id, Name: g.name, Type: g.typ})
		c.byName[g.name] = id
	}
	// Materialize explicit Output port gates so POs are vertices of O
	// distinct from internal signals (Definition D.1 requires I∩O = ∅
	// and our synthetic/ISCAS netlists may output an input directly).
	for _, name := range outputs {
		src, ok := index[name]
		if !ok {
			return nil, fmt.Errorf("circuit: output %q is undeclared", name)
		}
		id := GateID(len(c.Gates))
		portName := name + "$out"
		c.Gates = append(c.Gates, Gate{ID: id, Name: portName, Type: Output})
		c.byName[portName] = id
		c.Gates[id].Fanin = []GateID{GateID(src)}
		c.Outputs = append(c.Outputs, id)
	}
	// Resolve fan-in names for the original gates.
	for i, g := range gates {
		if len(g.fanin) == 0 {
			continue
		}
		fin := make([]GateID, len(g.fanin))
		for k, ref := range g.fanin {
			j, ok := index[ref]
			if !ok {
				return nil, fmt.Errorf("circuit: gate %q references undeclared signal %q", g.name, ref)
			}
			fin[k] = GateID(j)
		}
		c.Gates[i].Fanin = fin
	}
	for _, name := range inputs {
		c.Inputs = append(c.Inputs, GateID(index[name]))
	}

	// Create arcs and fanout lists.
	for gi := range c.Gates {
		g := &c.Gates[gi]
		g.InArcs = make([]ArcID, len(g.Fanin))
		for k, from := range g.Fanin {
			aid := ArcID(len(c.Arcs))
			c.Arcs = append(c.Arcs, Arc{ID: aid, From: from, To: g.ID, Pin: k})
			g.InArcs[k] = aid
			c.Gates[from].Fanout = append(c.Gates[from].Fanout, g.ID)
		}
	}

	if err := c.computeOrder(); err != nil {
		return nil, err
	}
	c.computeLevels()
	return c, nil
}

// scanConvert rewrites DFFs: the DFF's output name becomes an Input
// (pseudo-PI) and its data-input signal is marked as an Output
// (pseudo-PO). Original PIs/POs are retained.
func (b *Builder) scanConvert() (gates []builderGate, inputs, outputs []string, err error) {
	inputs = append([]string(nil), b.inputs...)
	outputs = append([]string(nil), b.outputs...)
	for _, g := range b.gates {
		if g.typ != DFF {
			gates = append(gates, g)
			continue
		}
		if len(g.fanin) != 1 {
			return nil, nil, nil, fmt.Errorf("circuit: DFF %q has %d inputs", g.name, len(g.fanin))
		}
		gates = append(gates, builderGate{name: g.name, typ: Input})
		inputs = append(inputs, g.name)
		outputs = append(outputs, g.fanin[0])
	}
	return gates, inputs, outputs, nil
}

// GateByName returns the gate with the given signal name.
func (c *Circuit) GateByName(name string) (*Gate, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return &c.Gates[id], true
}

// NumGates returns the number of gates (including port gates).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumArcs returns the number of pin-to-pin arcs, |E|.
func (c *Circuit) NumArcs() int { return len(c.Arcs) }

// OutputIndex returns the position of gate id within c.Outputs, or -1.
func (c *Circuit) OutputIndex(id GateID) int {
	for i, o := range c.Outputs {
		if o == id {
			return i
		}
	}
	return -1
}

// computeOrder performs Kahn's algorithm, failing on cycles. Among
// ready gates the smallest ID is taken first, so the order is
// deterministic for a given netlist.
func (c *Circuit) computeOrder() error {
	indeg := make([]int, len(c.Gates))
	for i := range c.Gates {
		indeg[i] = len(c.Gates[i].Fanin)
	}
	ready := make([]GateID, 0, len(c.Gates))
	for i := range c.Gates {
		if indeg[i] == 0 {
			ready = append(ready, GateID(i))
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	order := make([]GateID, 0, len(c.Gates))
	// Min-heap behaviour is unnecessary; FIFO over a sorted seed plus
	// deterministic fanout order yields a stable topological order.
	for len(ready) > 0 {
		g := ready[0]
		ready = ready[1:]
		order = append(order, g)
		for _, fo := range c.Gates[g].Fanout {
			indeg[fo]--
			if indeg[fo] == 0 {
				ready = append(ready, fo)
			}
		}
	}
	if len(order) != len(c.Gates) {
		return fmt.Errorf("circuit %q: cycle detected (%d of %d gates ordered); sequential loops must be cut by scan conversion", c.Name, len(order), len(c.Gates))
	}
	c.Order = order
	return nil
}

// computeLevels assigns each gate its longest arc-distance from any
// zero-fanin gate.
func (c *Circuit) computeLevels() {
	c.Levels = make([]int, len(c.Gates))
	for _, g := range c.Order {
		lvl := 0
		for _, fi := range c.Gates[g].Fanin {
			if l := c.Levels[fi] + 1; l > lvl {
				lvl = l
			}
		}
		c.Levels[g] = lvl
	}
}

// Depth returns the maximum level over all gates (the logic depth).
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.Levels {
		if l > d {
			d = l
		}
	}
	return d
}
