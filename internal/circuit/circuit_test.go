package circuit

import (
	"strings"
	"testing"
)

// buildC17 constructs the classic ISCAS'85 c17 netlist:
//
//	n10 = NAND(i1, i3); n11 = NAND(i3, i4)
//	n16 = NAND(i2, n11); n19 = NAND(n11, i5)
//	o22 = NAND(n10, n16); o23 = NAND(n16, n19)
func buildC17(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("c17")
	for _, in := range []string{"i1", "i2", "i3", "i4", "i5"} {
		if err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	gates := []struct {
		name string
		fin  []string
	}{
		{"n10", []string{"i1", "i3"}},
		{"n11", []string{"i3", "i4"}},
		{"n16", []string{"i2", "n11"}},
		{"n19", []string{"n11", "i5"}},
		{"o22", []string{"n10", "n16"}},
		{"o23", []string{"n16", "n19"}},
	}
	for _, g := range gates {
		if err := b.AddGate(g.name, Nand, g.fin...); err != nil {
			t.Fatal(err)
		}
	}
	b.MarkOutput("o22")
	b.MarkOutput("o23")
	c, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildC17(t *testing.T) {
	c := buildC17(t)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Inputs != 5 || st.Outputs != 2 {
		t.Errorf("IO = %d/%d", st.Inputs, st.Outputs)
	}
	if st.Logic != 6 {
		t.Errorf("logic gates = %d, want 6", st.Logic)
	}
	// 6 NAND * 2 pins + 2 output ports * 1 pin = 14 arcs.
	if st.Arcs != 14 {
		t.Errorf("arcs = %d, want 14", st.Arcs)
	}
	// depth: i -> n11 -> n16 -> o22 -> port = 4
	if st.Depth != 4 {
		t.Errorf("depth = %d, want 4", st.Depth)
	}
}

func TestGateByName(t *testing.T) {
	c := buildC17(t)
	g, ok := c.GateByName("n16")
	if !ok || g.Type != Nand || len(g.Fanin) != 2 {
		t.Fatalf("GateByName(n16) = %+v, %v", g, ok)
	}
	if _, ok := c.GateByName("bogus"); ok {
		t.Errorf("bogus name resolved")
	}
	// Output port gates get a $out suffix.
	if _, ok := c.GateByName("o22$out"); !ok {
		t.Errorf("output port gate missing")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	if err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInput("a"); err == nil {
		t.Errorf("duplicate input accepted")
	}
	if err := b.AddGate("", And, "a", "a"); err == nil {
		t.Errorf("empty name accepted")
	}
	if err := b.AddGate("g1", And, "a"); err == nil {
		t.Errorf("1-input AND accepted")
	}
	if err := b.AddGate("g2", Not, "a", "a"); err == nil {
		t.Errorf("2-input NOT accepted")
	}
	if err := b.AddGate("g3", And, "a", "zzz"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("g3")
	if _, err := b.Build(false); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("unresolved reference not caught: %v", err)
	}
}

func TestUndeclaredOutput(t *testing.T) {
	b := NewBuilder("bad")
	_ = b.AddInput("a")
	b.MarkOutput("nope")
	if _, err := b.Build(false); err == nil {
		t.Errorf("undeclared output accepted")
	}
}

func TestBuilderRejectsEmptyInterface(t *testing.T) {
	// No inputs.
	b := NewBuilder("noin")
	_ = b.AddGate("c1", Const1)
	b.MarkOutput("c1")
	if _, err := b.Build(false); err == nil {
		t.Errorf("inputless circuit accepted")
	}
	// No outputs.
	b2 := NewBuilder("noout")
	_ = b2.AddInput("a")
	if _, err := b2.Build(false); err == nil {
		t.Errorf("outputless circuit accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder("loop")
	_ = b.AddInput("a")
	_ = b.AddGate("x", And, "a", "y")
	_ = b.AddGate("y", And, "a", "x")
	b.MarkOutput("x")
	if _, err := b.Build(false); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestScanConversion(t *testing.T) {
	b := NewBuilder("seq")
	_ = b.AddInput("a")
	_ = b.AddGate("q", DFF, "g")
	_ = b.AddGate("g", And, "a", "q")
	b.MarkOutput("g")
	c, err := b.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	// After scan conversion: inputs a + q (pseudo), outputs g (PO) + g (PPO).
	if len(c.Inputs) != 2 {
		t.Errorf("inputs = %d, want 2 (PI + PPI)", len(c.Inputs))
	}
	if len(c.Outputs) != 2 {
		t.Errorf("outputs = %d, want 2 (PO + PPO)", len(c.Outputs))
	}
	q, ok := c.GateByName("q")
	if !ok || q.Type != Input {
		t.Errorf("DFF output not converted to pseudo-PI: %+v", q)
	}
}

func TestUnscannedDFFCycleFails(t *testing.T) {
	b := NewBuilder("seq")
	_ = b.AddInput("a")
	_ = b.AddGate("q", DFF, "g")
	_ = b.AddGate("g", And, "a", "q")
	b.MarkOutput("g")
	if _, err := b.Build(false); err == nil {
		t.Errorf("sequential loop without scan conversion should fail")
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	c := buildC17(t)
	pos := make(map[GateID]int)
	for p, g := range c.Order {
		pos[g] = p
	}
	for i := range c.Gates {
		for _, fi := range c.Gates[i].Fanin {
			if pos[fi] >= pos[GateID(i)] {
				t.Fatalf("order violation at %s", c.Gates[i].Name)
			}
		}
		lvl := 0
		for _, fi := range c.Gates[i].Fanin {
			if c.Levels[fi]+1 > lvl {
				lvl = c.Levels[fi] + 1
			}
		}
		if c.Levels[i] != lvl {
			t.Fatalf("level mismatch at %s: %d vs %d", c.Gates[i].Name, c.Levels[i], lvl)
		}
	}
}

func TestCones(t *testing.T) {
	c := buildC17(t)
	n16, _ := c.GateByName("n16")
	fin := c.FaninCone(n16.ID)
	for _, name := range []string{"n16", "n11", "i2", "i3", "i4"} {
		g, _ := c.GateByName(name)
		if !fin.Has(g.ID) {
			t.Errorf("fanin cone missing %s", name)
		}
	}
	for _, name := range []string{"i1", "i5", "n10", "o22"} {
		g, _ := c.GateByName(name)
		if fin.Has(g.ID) {
			t.Errorf("fanin cone wrongly contains %s", name)
		}
	}
	fo := c.FanoutCone(n16.ID)
	for _, name := range []string{"n16", "o22", "o23", "o22$out", "o23$out"} {
		g, _ := c.GateByName(name)
		if !fo.Has(g.ID) {
			t.Errorf("fanout cone missing %s", name)
		}
	}
	if got := fo.Count(); got != 5 {
		t.Errorf("fanout cone size = %d, want 5", got)
	}
}

func TestOutputsReachedFrom(t *testing.T) {
	c := buildC17(t)
	n10, _ := c.GateByName("n10")
	outs := c.OutputsReachedFrom(n10.ID)
	if len(outs) != 1 || outs[0] != 0 {
		t.Errorf("n10 reaches outputs %v, want [0]", outs)
	}
	n11, _ := c.GateByName("n11")
	outs = c.OutputsReachedFrom(n11.ID)
	if len(outs) != 2 {
		t.Errorf("n11 reaches outputs %v, want both", outs)
	}
}

func TestArcFanoutGates(t *testing.T) {
	c := buildC17(t)
	n19, _ := c.GateByName("n19")
	a := n19.InArcs[1] // i5 -> n19
	fo := c.ArcFanoutGates(a)
	// n19, o23, o23$out
	if fo.Count() != 3 {
		t.Errorf("arc fanout count = %d, want 3", fo.Count())
	}
}

func TestConeArcsAndOrderedSubset(t *testing.T) {
	c := buildC17(t)
	n16, _ := c.GateByName("n16")
	cone := c.FaninCone(n16.ID)
	arcs := c.ConeArcs(cone)
	// Arcs fully inside {i2,i3,i4,n11,n16}: i3->n11, i4->n11, i2->n16, n11->n16.
	if arcs.Count() != 4 {
		t.Errorf("cone arcs = %d, want 4", arcs.Count())
	}
	sub := c.OrderedSubset(cone)
	if len(sub) != cone.Count() {
		t.Fatalf("subset size mismatch")
	}
	seen := c.NewGateSet()
	for _, g := range sub {
		for _, fi := range c.Gates[g].Fanin {
			if cone.Has(fi) && !seen.Has(fi) {
				t.Fatalf("subset order violation at %s", c.Gates[g].Name)
			}
		}
		seen.Add(g)
	}
	if len(arcs.IDs()) != 4 {
		t.Errorf("IDs() length mismatch")
	}
}

func TestGateSetArcSetOps(t *testing.T) {
	c := buildC17(t)
	gs := c.NewGateSet()
	if gs.Count() != 0 {
		t.Errorf("fresh set non-empty")
	}
	gs.Add(3)
	gs.Add(3)
	gs.Add(5)
	if !gs.Has(3) || gs.Has(4) || gs.Count() != 2 {
		t.Errorf("gate set ops wrong")
	}
	as := c.NewArcSet()
	as.Add(1)
	as.Add(7)
	ids := as.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 7 {
		t.Errorf("IDs = %v", ids)
	}
	if as.Count() != 2 || !as.Has(7) || as.Has(0) {
		t.Errorf("arc set ops wrong")
	}
}

func TestOutputIndex(t *testing.T) {
	c := buildC17(t)
	if i := c.OutputIndex(c.Outputs[1]); i != 1 {
		t.Errorf("OutputIndex = %d, want 1", i)
	}
	if i := c.OutputIndex(c.Inputs[0]); i != -1 {
		t.Errorf("OutputIndex of input = %d, want -1", i)
	}
}
