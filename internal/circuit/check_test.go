package circuit

import (
	"strings"
	"testing"
)

// TestCheckPassesOnValidCircuit pins the baseline: a well-formed
// netlist produces no diagnostics.
func TestCheckPassesOnValidCircuit(t *testing.T) {
	if err := buildC17(t).Check(); err != nil {
		t.Fatalf("Check on valid circuit: %v", err)
	}
}

// loopCircuit hand-assembles a structurally consistent netlist whose
// two buffers feed each other — a combinational loop that no Builder
// output can contain, so Check must catch it on hand-made or
// transformed circuits.
func loopCircuit() *Circuit {
	gates := []Gate{
		{ID: 0, Name: "i", Type: Input, Fanout: []GateID{}},
		{ID: 1, Name: "a", Type: Buf, Fanin: []GateID{2}, Fanout: []GateID{2, 3}, InArcs: []ArcID{0}},
		{ID: 2, Name: "b", Type: Buf, Fanin: []GateID{1}, Fanout: []GateID{1}, InArcs: []ArcID{1}},
		{ID: 3, Name: "o", Type: Output, Fanin: []GateID{1}, Fanout: []GateID{}, InArcs: []ArcID{2}},
	}
	arcs := []Arc{
		{ID: 0, From: 2, To: 1, Pin: 0},
		{ID: 1, From: 1, To: 2, Pin: 0},
		{ID: 2, From: 1, To: 3, Pin: 0},
	}
	return &Circuit{
		Name:    "loop",
		Gates:   gates,
		Arcs:    arcs,
		Inputs:  []GateID{0},
		Outputs: []GateID{3},
		Order:   []GateID{0, 1, 2, 3},
		Levels:  []int{0, 1, 2, 3},
	}
}

func TestCheckRejectsCombinationalLoop(t *testing.T) {
	err := loopCircuit().Check()
	if err == nil {
		t.Fatal("Check accepted a combinational loop")
	}
	if !strings.Contains(err.Error(), "precedence") {
		t.Errorf("loop reported as %q, want a precedence violation", err)
	}
}

func TestCheckRejectsDanglingArc(t *testing.T) {
	c := buildC17(t)
	// An arc with valid endpoints that no input pin references: the
	// timing model would assign it a delay no simulation ever uses.
	c.Arcs = append(c.Arcs, Arc{
		ID:   ArcID(len(c.Arcs)),
		From: c.Inputs[0],
		To:   c.Outputs[0],
		Pin:  0,
	})
	err := c.Check()
	if err == nil {
		t.Fatal("Check accepted a dangling arc")
	}
	if !strings.Contains(err.Error(), "dangling arc") {
		t.Errorf("dangling arc reported as %q", err)
	}
}

func TestCheckRejectsOutOfRangeArc(t *testing.T) {
	c := buildC17(t)
	c.Arcs = append(c.Arcs, Arc{
		ID:   ArcID(len(c.Arcs)),
		From: GateID(len(c.Gates) + 7),
		To:   c.Outputs[0],
		Pin:  0,
	})
	err := c.Check()
	if err == nil {
		t.Fatal("Check accepted an arc with out-of-range endpoints")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range arc reported as %q", err)
	}
}

func TestCheckRejectsOutOfRangeInArc(t *testing.T) {
	c := buildC17(t)
	g := &c.Gates[c.Outputs[0]]
	saved := g.InArcs[0]
	g.InArcs[0] = ArcID(len(c.Arcs) + 3)
	err := c.Check()
	g.InArcs[0] = saved
	if err == nil {
		t.Fatal("Check accepted an out-of-range in-arc id")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range in-arc reported as %q", err)
	}
}

func TestCheckRejectsDoublyAttachedArc(t *testing.T) {
	c := buildC17(t)
	// Point the output port's single pin at an arc already owned by
	// another gate: duplicate attachment (or inconsistency) must be
	// caught before the dangling pass.
	g := &c.Gates[c.Outputs[0]]
	saved := g.InArcs[0]
	g.InArcs[0] = c.Gates[c.Outputs[1]].InArcs[0]
	err := c.Check()
	g.InArcs[0] = saved
	if err == nil {
		t.Fatal("Check accepted a doubly-attached arc")
	}
}
