package circuit

// GateSet is a dense membership set over gates.
type GateSet []bool

// NewGateSet returns an empty set sized for circuit c.
func (c *Circuit) NewGateSet() GateSet { return make(GateSet, len(c.Gates)) }

// Add inserts a gate.
func (s GateSet) Add(id GateID) { s[id] = true }

// Has reports membership.
func (s GateSet) Has(id GateID) bool { return s[id] }

// Count returns the number of members.
func (s GateSet) Count() int {
	n := 0
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

// ArcSet is a dense membership set over arcs.
type ArcSet []bool

// NewArcSet returns an empty set sized for circuit c.
func (c *Circuit) NewArcSet() ArcSet { return make(ArcSet, len(c.Arcs)) }

// Add inserts an arc.
func (s ArcSet) Add(id ArcID) { s[id] = true }

// Has reports membership.
func (s ArcSet) Has(id ArcID) bool { return s[id] }

// Count returns the number of members.
func (s ArcSet) Count() int {
	n := 0
	for _, v := range s {
		if v {
			n++
		}
	}
	return n
}

// IDs returns the member arc IDs in ascending order.
func (s ArcSet) IDs() []ArcID {
	var ids []ArcID
	for i, v := range s {
		if v {
			ids = append(ids, ArcID(i))
		}
	}
	return ids
}

// FaninCone returns the set of gates in the transitive fan-in of the
// given roots (roots included).
func (c *Circuit) FaninCone(roots ...GateID) GateSet {
	seen := c.NewGateSet()
	stack := append([]GateID(nil), roots...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[g] {
			continue
		}
		seen[g] = true
		stack = append(stack, c.Gates[g].Fanin...)
	}
	return seen
}

// FanoutCone returns the set of gates in the transitive fan-out of the
// given roots (roots included).
func (c *Circuit) FanoutCone(roots ...GateID) GateSet {
	seen := c.NewGateSet()
	stack := append([]GateID(nil), roots...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[g] {
			continue
		}
		seen[g] = true
		stack = append(stack, c.Gates[g].Fanout...)
	}
	return seen
}

// ArcFanoutGates returns the gates whose arrival times can change when
// the delay of arc a changes: gate a.To and its transitive fan-out.
// This is the incremental re-simulation region for a defect on a.
func (c *Circuit) ArcFanoutGates(a ArcID) GateSet {
	return c.FanoutCone(c.Arcs[a].To)
}

// ConeArcs returns the arcs both of whose endpoints lie in the gate set.
func (c *Circuit) ConeArcs(gates GateSet) ArcSet {
	arcs := c.NewArcSet()
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if gates.Has(a.From) && gates.Has(a.To) {
			arcs.Add(a.ID)
		}
	}
	return arcs
}

// OutputsReachedFrom returns the indices (into c.Outputs) of outputs in
// the transitive fan-out of gate g.
func (c *Circuit) OutputsReachedFrom(g GateID) []int {
	cone := c.FanoutCone(g)
	var out []int
	for i, o := range c.Outputs {
		if cone.Has(o) {
			out = append(out, i)
		}
	}
	return out
}

// OrderedSubset returns the gates of set in topological order.
func (c *Circuit) OrderedSubset(set GateSet) []GateID {
	var out []GateID
	for _, g := range c.Order {
		if set.Has(g) {
			out = append(out, g)
		}
	}
	return out
}
