// Package circuit provides the gate-level netlist substrate: a cell
// library with logic semantics, a directed acyclic circuit graph whose
// arcs are the pin-to-pin delay edges of the paper's circuit model
// (Definition D.1), topological utilities (levelization, fan-in/fan-out
// cones), scan conversion for sequential benchmarks, and structural
// validation.
package circuit

import "fmt"

// CellType enumerates the supported cell functions. The set covers the
// ISCAS'89 .bench vocabulary plus explicit input/output port markers.
type CellType uint8

// Supported cell types.
const (
	Input CellType = iota // primary input (or pseudo-PI after scan conversion)
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF     // D flip-flop; removed by scan conversion
	Output  // primary output port (one input, identity function)
	Const0  // constant 0 driver
	Const1  // constant 1 driver
	numCell // sentinel
)

var cellNames = [...]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR", DFF: "DFF",
	Output: "OUTPUT", Const0: "CONST0", Const1: "CONST1",
}

func (c CellType) String() string {
	if int(c) < len(cellNames) {
		return cellNames[c]
	}
	return fmt.Sprintf("CellType(%d)", uint8(c))
}

// ParseCellType converts a .bench function name to a CellType. The
// boolean reports whether the name was recognized.
func ParseCellType(name string) (CellType, bool) {
	switch name {
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "DFF":
		return DFF, true
	default:
		return 0, false
	}
}

// MinFanin returns the minimum legal fan-in for the cell type.
func (c CellType) MinFanin() int {
	switch c {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF, Output:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fan-in (-1 means unbounded).
func (c CellType) MaxFanin() int {
	switch c {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF, Output:
		return 1
	default:
		return -1 // variadic gates
	}
}

// Eval computes the cell's boolean function over the input values. For
// Input/Const cells (no inputs) it returns the constant (Input defaults
// to false; simulators never call Eval on Input cells).
func (c CellType) Eval(in []bool) bool {
	switch c {
	case Const0, Input:
		return false
	case Const1:
		return true
	case Buf, DFF, Output:
		return in[0]
	case Not:
		return !in[0]
	case And:
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	case Nand:
		for _, v := range in {
			if !v {
				return true
			}
		}
		return false
	case Or:
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	case Nor:
		for _, v := range in {
			if v {
				return false
			}
		}
		return true
	case Xor:
		out := false
		for _, v := range in {
			out = out != v
		}
		return out
	case Xnor:
		out := true
		for _, v := range in {
			out = out != v
		}
		return out
	default:
		panic(fmt.Sprintf("circuit: Eval on %v", c))
	}
}

// EvalWords computes the function over 64-way bit-parallel words (one
// pattern per bit), used by the parallel-pattern logic simulator.
func (c CellType) EvalWords(in []uint64) uint64 {
	switch c {
	case Const0, Input:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf, DFF, Output:
		return in[0]
	case Not:
		return ^in[0]
	case And:
		out := ^uint64(0)
		for _, v := range in {
			out &= v
		}
		return out
	case Nand:
		out := ^uint64(0)
		for _, v := range in {
			out &= v
		}
		return ^out
	case Or:
		out := uint64(0)
		for _, v := range in {
			out |= v
		}
		return out
	case Nor:
		out := uint64(0)
		for _, v := range in {
			out |= v
		}
		return ^out
	case Xor:
		out := uint64(0)
		for _, v := range in {
			out ^= v
		}
		return out
	case Xnor:
		out := uint64(0)
		for _, v := range in {
			out ^= v
		}
		return ^out
	default:
		panic(fmt.Sprintf("circuit: EvalWords on %v", c))
	}
}

// Controlling returns the controlling input value of the cell and
// whether the cell has one. An input at the controlling value fixes the
// output regardless of the other inputs (AND/NAND: 0, OR/NOR: 1).
// XOR/XNOR and single-input cells have no controlling value.
func (c CellType) Controlling() (value bool, ok bool) {
	switch c {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	default:
		return false, false
	}
}

// Inverting reports whether the cell logically inverts: the output with
// all inputs non-controlling (or the single input, for 1-input cells)
// is the complement of the non-controlling value.
func (c CellType) Inverting() bool {
	switch c {
	case Not, Nand, Nor, Xnor:
		return true
	default:
		return false
	}
}
