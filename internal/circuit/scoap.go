package circuit

// SCOAP testability measures (Goldstein 1979): combinational 0/1
// controllability (the cost of setting a line to 0/1 from the inputs)
// and observability (the cost of propagating a line's value to an
// output). The ATPG uses controllability to steer its backtrace toward
// the cheapest inputs, and the diagnosis experiments use observability
// to characterize sites.
//
// Conventions: controllability of a primary input is 1; every gate
// traversal adds 1; unreachable values would be infinite and are
// represented by a large sentinel.

// ScoapInf is the sentinel for uncontrollable/unobservable lines.
const ScoapInf = 1 << 30

// Scoap holds the testability measures for every gate output.
type Scoap struct {
	CC0 []int32 // cost of setting the line to 0
	CC1 []int32 // cost of setting the line to 1
	CO  []int32 // cost of observing the line at any output
}

func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s >= ScoapInf {
		return ScoapInf
	}
	return int32(s)
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// ComputeScoap returns the SCOAP measures for circuit c.
func ComputeScoap(c *Circuit) *Scoap {
	s := &Scoap{
		CC0: make([]int32, len(c.Gates)),
		CC1: make([]int32, len(c.Gates)),
		CO:  make([]int32, len(c.Gates)),
	}
	// Controllability, forward in topological order.
	for _, gid := range c.Order {
		g := &c.Gates[gid]
		switch g.Type {
		case Input:
			s.CC0[gid], s.CC1[gid] = 1, 1
		case Const0:
			s.CC0[gid], s.CC1[gid] = 0, ScoapInf
		case Const1:
			s.CC0[gid], s.CC1[gid] = ScoapInf, 0
		case Buf, Output, DFF:
			s.CC0[gid] = satAdd(s.CC0[g.Fanin[0]], 1)
			s.CC1[gid] = satAdd(s.CC1[g.Fanin[0]], 1)
		case Not:
			s.CC0[gid] = satAdd(s.CC1[g.Fanin[0]], 1)
			s.CC1[gid] = satAdd(s.CC0[g.Fanin[0]], 1)
		case And, Nand, Or, Nor:
			ctrl, _ := g.Type.Controlling()
			// Output at the "forced" value: one input controlling
			// (cheapest); at the other value: all inputs
			// non-controlling (sum).
			cheapest := int32(ScoapInf)
			var sum int32 = 1
			for _, fi := range g.Fanin {
				cCtrl, cNon := s.CC0[fi], s.CC1[fi]
				if ctrl {
					cCtrl, cNon = s.CC1[fi], s.CC0[fi]
				}
				cheapest = min32(cheapest, satAdd(cCtrl, 1))
				sum = satAdd(sum, cNon)
			}
			forced := g.Type.Eval([]bool{ctrl, ctrl}) // output with a controlling input
			if forced {
				s.CC1[gid] = cheapest
				s.CC0[gid] = sum
			} else {
				s.CC0[gid] = cheapest
				s.CC1[gid] = sum
			}
		case Xor, Xnor:
			// Parity: cost ≈ cheapest combination; approximate with
			// the standard 2-input recursion folded over the inputs.
			c0, c1 := s.CC0[g.Fanin[0]], s.CC1[g.Fanin[0]]
			for _, fi := range g.Fanin[1:] {
				b0, b1 := s.CC0[fi], s.CC1[fi]
				even := min32(satAdd(c0, b0), satAdd(c1, b1))
				odd := min32(satAdd(c0, b1), satAdd(c1, b0))
				c0, c1 = even, odd
			}
			inv := g.Type == Xnor
			if inv {
				c0, c1 = c1, c0
			}
			s.CC0[gid] = satAdd(c0, 1)
			s.CC1[gid] = satAdd(c1, 1)
		}
	}
	// Observability, backward.
	for i := range s.CO {
		s.CO[i] = ScoapInf
	}
	for _, o := range c.Outputs {
		s.CO[o] = 0
	}
	for i := len(c.Order) - 1; i >= 0; i-- {
		gid := c.Order[i]
		g := &c.Gates[gid]
		for k, fi := range g.Fanin {
			var cost int32
			switch g.Type {
			case Buf, Not, Output, DFF:
				cost = satAdd(s.CO[gid], 1)
			case And, Nand, Or, Nor:
				ctrl, _ := g.Type.Controlling()
				cost = satAdd(s.CO[gid], 1)
				for j, other := range g.Fanin {
					if j == k {
						continue
					}
					// Side inputs must be non-controlling.
					if ctrl {
						cost = satAdd(cost, s.CC0[other])
					} else {
						cost = satAdd(cost, s.CC1[other])
					}
				}
			case Xor, Xnor:
				cost = satAdd(s.CO[gid], 1)
				for j, other := range g.Fanin {
					if j == k {
						continue
					}
					cost = satAdd(cost, min32(s.CC0[other], s.CC1[other]))
				}
			default:
				cost = ScoapInf
			}
			s.CO[fi] = min32(s.CO[fi], cost)
		}
	}
	return s
}

// Controllability returns the cost of driving gate g to value v.
func (s *Scoap) Controllability(g GateID, v bool) int32 {
	if v {
		return s.CC1[g]
	}
	return s.CC0[g]
}
