package circuit

import (
	"testing"
	"testing/quick"
)

func TestParseCellType(t *testing.T) {
	cases := map[string]CellType{
		"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor,
		"XOR": Xor, "XNOR": Xnor, "NOT": Not, "INV": Not,
		"BUF": Buf, "BUFF": Buf, "DFF": DFF,
	}
	for name, want := range cases {
		got, ok := ParseCellType(name)
		if !ok || got != want {
			t.Errorf("ParseCellType(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseCellType("MUX42"); ok {
		t.Errorf("unknown cell parsed")
	}
}

func TestEvalTruthTables(t *testing.T) {
	two := [][]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	cases := []struct {
		typ  CellType
		want [4]bool
	}{
		{And, [4]bool{false, false, false, true}},
		{Nand, [4]bool{true, true, true, false}},
		{Or, [4]bool{false, true, true, true}},
		{Nor, [4]bool{true, false, false, false}},
		{Xor, [4]bool{false, true, true, false}},
		{Xnor, [4]bool{true, false, false, true}},
	}
	for _, c := range cases {
		for i, in := range two {
			if got := c.typ.Eval(in); got != c.want[i] {
				t.Errorf("%v%v = %v, want %v", c.typ, in, got, c.want[i])
			}
		}
	}
	if Not.Eval([]bool{true}) || !Not.Eval([]bool{false}) {
		t.Errorf("NOT wrong")
	}
	if !Buf.Eval([]bool{true}) || Buf.Eval([]bool{false}) {
		t.Errorf("BUF wrong")
	}
	if Const0.Eval(nil) || !Const1.Eval(nil) {
		t.Errorf("const wrong")
	}
}

func TestEvalVariadic(t *testing.T) {
	in := []bool{true, true, false, true}
	if And.Eval(in) {
		t.Errorf("4-in AND with a zero should be 0")
	}
	if !Or.Eval(in) {
		t.Errorf("4-in OR with a one should be 1")
	}
	if !Xor.Eval(in) { // three ones -> odd parity
		t.Errorf("4-in XOR parity wrong")
	}
	if Xnor.Eval(in) {
		t.Errorf("4-in XNOR parity wrong")
	}
}

// TestEvalWordsMatchesEval checks bit-parallel evaluation against the
// scalar truth function over random words for every multi-input cell.
func TestEvalWordsMatchesEval(t *testing.T) {
	types := []CellType{And, Nand, Or, Nor, Xor, Xnor}
	f := func(a, b, c uint64, ti uint8) bool {
		typ := types[int(ti)%len(types)]
		words := []uint64{a, b, c}
		out := typ.EvalWords(words)
		for bit := 0; bit < 64; bit++ {
			in := []bool{a>>bit&1 == 1, b>>bit&1 == 1, c>>bit&1 == 1}
			if typ.Eval(in) != (out>>bit&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Single-input cells.
	w := uint64(0xF0F0AAAA55551111)
	if Not.EvalWords([]uint64{w}) != ^w {
		t.Errorf("NOT words wrong")
	}
	if Buf.EvalWords([]uint64{w}) != w {
		t.Errorf("BUF words wrong")
	}
	if Const0.EvalWords(nil) != 0 || Const1.EvalWords(nil) != ^uint64(0) {
		t.Errorf("const words wrong")
	}
}

func TestControllingAndInverting(t *testing.T) {
	cases := []struct {
		typ    CellType
		ctrl   bool
		has    bool
		invert bool
	}{
		{And, false, true, false},
		{Nand, false, true, true},
		{Or, true, true, false},
		{Nor, true, true, true},
		{Xor, false, false, false},
		{Xnor, false, false, true},
		{Not, false, false, true},
		{Buf, false, false, false},
	}
	for _, c := range cases {
		v, ok := c.typ.Controlling()
		if ok != c.has || (ok && v != c.ctrl) {
			t.Errorf("%v Controlling = %v,%v", c.typ, v, ok)
		}
		if c.typ.Inverting() != c.invert {
			t.Errorf("%v Inverting = %v", c.typ, c.typ.Inverting())
		}
	}
}

// Controlling-value semantics: any input at the controlling value
// forces the output to Eval(all-controlling).
func TestControllingForcesOutput(t *testing.T) {
	for _, typ := range []CellType{And, Nand, Or, Nor} {
		ctrl, _ := typ.Controlling()
		forced := typ.Eval([]bool{ctrl, ctrl})
		for _, other := range []bool{false, true} {
			if got := typ.Eval([]bool{ctrl, other}); got != forced {
				t.Errorf("%v controlling input does not force output", typ)
			}
			if got := typ.Eval([]bool{other, ctrl}); got != forced {
				t.Errorf("%v controlling input does not force output (pin 1)", typ)
			}
		}
	}
}

func TestMinMaxFanin(t *testing.T) {
	if And.MinFanin() != 2 || And.MaxFanin() != -1 {
		t.Errorf("AND fanin bounds wrong")
	}
	if Not.MinFanin() != 1 || Not.MaxFanin() != 1 {
		t.Errorf("NOT fanin bounds wrong")
	}
	if Input.MinFanin() != 0 || Input.MaxFanin() != 0 {
		t.Errorf("INPUT fanin bounds wrong")
	}
}

func TestCellTypeString(t *testing.T) {
	if And.String() != "AND" || DFF.String() != "DFF" {
		t.Errorf("String() wrong")
	}
	if CellType(200).String() == "" {
		t.Errorf("out-of-range String empty")
	}
}
