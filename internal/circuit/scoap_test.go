package circuit

import "testing"

func buildScoapFixture(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("scoap")
	for _, in := range []string{"a", "b", "c"} {
		if err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	// g1 = AND(a, b); g2 = NOT(c); o = OR(g1, g2)
	if err := b.AddGate("g1", And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGate("g2", Not, "c"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddGate("o", Or, "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("o")
	c, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScoapControllability(t *testing.T) {
	c := buildScoapFixture(t)
	s := ComputeScoap(c)
	a, _ := c.GateByName("a")
	if s.CC0[a.ID] != 1 || s.CC1[a.ID] != 1 {
		t.Errorf("input controllability = %d/%d", s.CC0[a.ID], s.CC1[a.ID])
	}
	g1, _ := c.GateByName("g1")
	// AND: CC1 = CC1(a)+CC1(b)+1 = 3; CC0 = min(CC0 inputs)+1 = 2.
	if s.CC1[g1.ID] != 3 {
		t.Errorf("AND CC1 = %d, want 3", s.CC1[g1.ID])
	}
	if s.CC0[g1.ID] != 2 {
		t.Errorf("AND CC0 = %d, want 2", s.CC0[g1.ID])
	}
	g2, _ := c.GateByName("g2")
	// NOT: swaps and adds 1.
	if s.CC0[g2.ID] != 2 || s.CC1[g2.ID] != 2 {
		t.Errorf("NOT CC = %d/%d", s.CC0[g2.ID], s.CC1[g2.ID])
	}
	o, _ := c.GateByName("o")
	// OR: CC1 = min(CC1(g1), CC1(g2)) + 1 = 3; CC0 = CC0(g1)+CC0(g2)+1 = 5.
	if s.CC1[o.ID] != 3 {
		t.Errorf("OR CC1 = %d, want 3", s.CC1[o.ID])
	}
	if s.CC0[o.ID] != 5 {
		t.Errorf("OR CC0 = %d, want 5", s.CC0[o.ID])
	}
	if s.Controllability(o.ID, true) != s.CC1[o.ID] {
		t.Errorf("Controllability accessor wrong")
	}
}

func TestScoapObservability(t *testing.T) {
	c := buildScoapFixture(t)
	s := ComputeScoap(c)
	port := c.Outputs[0]
	if s.CO[port] != 0 {
		t.Errorf("output port CO = %d", s.CO[port])
	}
	o, _ := c.GateByName("o")
	// o observes through the port: CO = 0 + 1.
	if s.CO[o.ID] != 1 {
		t.Errorf("o CO = %d, want 1", s.CO[o.ID])
	}
	g1, _ := c.GateByName("g1")
	// g1 through OR needs g2 = 0: CO(o)+1+CC0(g2) = 1+1+2 = 4.
	if s.CO[g1.ID] != 4 {
		t.Errorf("g1 CO = %d, want 4", s.CO[g1.ID])
	}
	a, _ := c.GateByName("a")
	// a through AND needs b = 1: CO(g1)+1+CC1(b) = 4+1+1 = 6.
	if s.CO[a.ID] != 6 {
		t.Errorf("a CO = %d, want 6", s.CO[a.ID])
	}
}

func TestScoapXor(t *testing.T) {
	b := NewBuilder("x")
	_ = b.AddInput("a")
	_ = b.AddInput("b")
	_ = b.AddGate("x", Xor, "a", "b")
	b.MarkOutput("x")
	c, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(c)
	x, _ := c.GateByName("x")
	// XOR CC0 = min(1+1, 1+1)+1 = 3; CC1 same by symmetry.
	if s.CC0[x.ID] != 3 || s.CC1[x.ID] != 3 {
		t.Errorf("XOR CC = %d/%d, want 3/3", s.CC0[x.ID], s.CC1[x.ID])
	}
	a, _ := c.GateByName("a")
	// a through XOR: CO(x)+1+min(CC(b)) = 1+1+1 = 3.
	if s.CO[a.ID] != 3 {
		t.Errorf("a CO through XOR = %d, want 3", s.CO[a.ID])
	}
}

func TestScoapDanglingUnobservable(t *testing.T) {
	b := NewBuilder("d")
	_ = b.AddInput("a")
	_ = b.AddInput("b")
	_ = b.AddGate("used", And, "a", "b")
	_ = b.AddGate("dead", Or, "a", "b") // drives nothing
	b.MarkOutput("used")
	c, err := b.Build(false)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(c)
	dead, _ := c.GateByName("dead")
	if s.CO[dead.ID] != ScoapInf {
		t.Errorf("dead gate CO = %d, want unobservable", s.CO[dead.ID])
	}
}

func TestScoapOnGeneratedCircuitFinite(t *testing.T) {
	c := buildC17(t)
	s := ComputeScoap(c)
	for i := range c.Gates {
		if s.CC0[i] >= ScoapInf || s.CC1[i] >= ScoapInf {
			t.Errorf("gate %s uncontrollable", c.Gates[i].Name)
		}
		if s.CO[i] >= ScoapInf {
			t.Errorf("gate %s unobservable", c.Gates[i].Name)
		}
	}
}
