package benchfmt

import (
	"strings"
	"testing"

	"repro/internal/circuit"
)

const c17Bench = `
# c17 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)

OUTPUT(G22)
OUTPUT(G23)

G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17Bench, "c17", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Inputs != 5 || st.Outputs != 2 || st.Logic != 6 {
		t.Errorf("stats = %v", st)
	}
	g, ok := c.GateByName("G16")
	if !ok || g.Type != circuit.Nand {
		t.Errorf("G16 = %+v", g)
	}
}

func TestParseSequentialWithScan(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(out)
q = DFF(d)
d = NAND(a, q)
out = NOT(q)
`
	c, err := ParseString(src, "seq", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 { // a + pseudo-PI q
		t.Errorf("inputs = %d, want 2", len(c.Inputs))
	}
	if len(c.Outputs) != 2 { // out + pseudo-PO d
		t.Errorf("outputs = %d, want 2", len(c.Outputs))
	}
}

func TestParseSequentialWithoutScanFails(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(d)\nq = DFF(d)\nd = NAND(a, q)\n"
	if _, err := ParseString(src, "seq", false); err == nil {
		t.Errorf("cyclic sequential netlist parsed without scan conversion")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"G1 = FROB(a, b)",          // unknown function
		"INPUT(a, b)",              // too many args
		"WIBBLE(a)",                // unknown statement
		"G1 = NAND(a,)",            // empty arg
		"G1 = NAND",                // malformed call
		"INPUT()",                  // empty args
		"INPUT(a)\nINPUT(a)",       // duplicate
		"INPUT(a)\ng = NOT(a, a)",  // fanin count
		"OUTPUT(z)\nINPUT(a)",      // undeclared output
		"INPUT(a)\ng = NAND(a, w)", // undeclared ref (w), g unused but output missing anyway
	}
	for _, src := range cases {
		if _, err := ParseString(src, "bad", false); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	src := "input(a)  # trailing comment\ninput(b)\noutput(o)\no = nand(a, b)\n"
	c, err := ParseString(src, "lc", false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Logic != 1 {
		t.Errorf("lower-case parse failed: %v", c.Stats())
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(c17Bench, "c17", false)
	if err != nil {
		t.Fatal(err)
	}
	text := String(orig)
	back, err := ParseString(text, "c17", false)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	so, sb := orig.Stats(), back.Stats()
	if so != sb {
		t.Errorf("round-trip stats changed: %v -> %v", so, sb)
	}
	// Same gate names with same types and fanins.
	for i := range orig.Gates {
		g := &orig.Gates[i]
		if g.Type == circuit.Output {
			continue
		}
		h, ok := back.GateByName(g.Name)
		if !ok {
			t.Fatalf("gate %q lost in round trip", g.Name)
		}
		if h.Type != g.Type || len(h.Fanin) != len(g.Fanin) {
			t.Errorf("gate %q changed: %v/%d -> %v/%d", g.Name, g.Type, len(g.Fanin), h.Type, len(h.Fanin))
		}
		for k := range g.Fanin {
			if back.Gates[h.Fanin[k]].Name != orig.Gates[g.Fanin[k]].Name {
				t.Errorf("gate %q pin %d fanin changed", g.Name, k)
			}
		}
	}
}

func TestRoundTripScanConverted(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(out)\nq = DFF(d)\nd = NAND(a, q)\nout = NOT(q)\n"
	c, err := ParseString(src, "seq", true)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(String(c), "seq", false) // already combinational
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats() != back.Stats() {
		t.Errorf("scan round-trip stats changed: %v -> %v", c.Stats(), back.Stats())
	}
}

func TestWriteContainsHeaderAndSections(t *testing.T) {
	c, _ := ParseString(c17Bench, "c17", false)
	text := String(c)
	for _, want := range []string{"INPUT(G1)", "OUTPUT(G22)", "G10 = NAND(G1, G3)"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
