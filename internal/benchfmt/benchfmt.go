// Package benchfmt reads and writes the ISCAS'89 ".bench" netlist
// format, the standard interchange format for the benchmark circuits
// the paper evaluates on (s1196 … s15850). Parsing produces a
// circuit.Circuit (optionally scan-converted so DFFs become
// pseudo-PI/PO pairs, the full-scan view used in delay testing), so
// real ISCAS'89 netlists can be dropped in wherever the synthetic
// generator is used.
//
// Grammar (per line):
//
//	# comment
//	INPUT(name)
//	OUTPUT(name)
//	name = FUNC(arg, arg, ...)
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
)

// Parse reads a .bench netlist and returns the built circuit. When
// scanConvert is set, DFFs are replaced by pseudo-primary inputs and
// outputs (required for the sequential s-series circuits, whose
// flip-flop loops would otherwise make the graph cyclic).
func Parse(r io.Reader, name string, scanConvert bool) (*circuit.Circuit, error) {
	b := circuit.NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("benchfmt: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	c, err := b.Build(scanConvert)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s, name string, scanConvert bool) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), name, scanConvert)
}

func parseLine(b *circuit.Builder, line string) error {
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		lhs := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		fn, args, err := splitCall(rhs)
		if err != nil {
			return err
		}
		typ, ok := circuit.ParseCellType(fn)
		if !ok {
			return fmt.Errorf("unknown cell function %q", fn)
		}
		return b.AddGate(lhs, typ, args...)
	}
	fn, args, err := splitCall(line)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("%s expects one argument, got %d", fn, len(args))
	}
	switch strings.ToUpper(fn) {
	case "INPUT":
		return b.AddInput(args[0])
	case "OUTPUT":
		b.MarkOutput(args[0])
		return nil
	default:
		return fmt.Errorf("unrecognized statement %q", line)
	}
}

// splitCall parses "FUNC(a, b, c)" into the function name and the
// trimmed argument list.
func splitCall(s string) (fn string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed call %q", s)
	}
	fn = strings.ToUpper(strings.TrimSpace(s[:open]))
	inner := s[open+1 : len(s)-1]
	if strings.TrimSpace(inner) == "" {
		return "", nil, fmt.Errorf("empty argument list in %q", s)
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty argument in %q", s)
		}
		args = append(args, a)
	}
	return fn, args, nil
}

// Write emits c in .bench format. Output port gates (which the builder
// materializes) are folded back into OUTPUT(...) statements on their
// driving signal; pseudo-primary inputs from scan conversion are
// written as plain INPUTs, so the written file describes the
// combinational full-scan view.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %s\n", c.Name, c.Stats())
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[in].Name)
	}
	for _, out := range c.Outputs {
		g := &c.Gates[out]
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[g.Fanin[0]].Name)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.Type {
		case circuit.Input, circuit.Output:
			continue
		}
		names := make([]string, len(g.Fanin))
		for k, fi := range g.Fanin {
			names[k] = c.Gates[fi].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// String renders c in .bench format.
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}
