package benchfmt

import (
	"strings"
	"testing"
)

// FuzzParse checks that the .bench parser never panics and that every
// successfully parsed circuit passes structural validation and
// round-trips through the writer. The seed corpus covers the grammar;
// `go test` runs the seeds, `go test -fuzz=FuzzParse` explores.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"INPUT(a)\nOUTPUT(o)\no = NOT(a)\n",
		"# comment only\n",
		"INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NAND(a, b)\n",
		"input(a)\noutput(q)\nq = DFF(d)\nd = nor(a, q)\n",
		"INPUT(a)\nOUTPUT(o)\no = XOR(a, a)\n",
		"INPUT(x)\nOUTPUT(x)\n",
		"garbage line",
		"G1 = AND(",
		"INPUT()",
		"OUTPUT(undeclared)\n",
		"INPUT(a)\nOUTPUT(o)\no = BUFF(a)\n",
		strings.Repeat("INPUT(a)\n", 3),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, "fuzz", true)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Check(); err != nil {
			t.Fatalf("parsed circuit fails validation: %v\nsource:\n%s", err, src)
		}
		// Writer output must re-parse to the same shape.
		text := String(c)
		back, err := ParseString(text, "fuzz", false)
		if err != nil {
			t.Fatalf("round trip failed: %v\nwritten:\n%s", err, text)
		}
		if c.Stats() != back.Stats() {
			t.Fatalf("round trip changed stats: %v -> %v", c.Stats(), back.Stats())
		}
	})
}
