package fault

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestDisarmedPointNeverHits(t *testing.T) {
	p := Register("test-disarmed")
	for i := 0; i < 1000; i++ {
		if p.Hit() {
			t.Fatal("disarmed point fired")
		}
	}
	if p.Injected() != 0 {
		t.Errorf("injected = %d, want 0", p.Injected())
	}
}

func TestConfigureProbOneAlwaysHits(t *testing.T) {
	p := Register("test-always")
	defer Reset()
	if err := Configure("test-always:1:42"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !p.Hit() {
			t.Fatal("prob-1 point missed")
		}
	}
	if p.Injected() != 100 {
		t.Errorf("injected = %d, want 100", p.Injected())
	}
}

func TestConfigureDeterministicSequence(t *testing.T) {
	p := Register("test-seq")
	defer Reset()
	run := func() []bool {
		if err := Configure("test-seq:0.5:7"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = p.Hit()
		}
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit sequence diverged at %d for identical spec", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("prob 0.5 produced %d/%d hits", hits, len(a))
	}
}

func TestConfigureParamAndDefault(t *testing.T) {
	p := Register("test-param")
	defer Reset()
	if err := Configure("test-param:1:1:250"); err != nil {
		t.Fatal(err)
	}
	if got := p.Param(100); got != 250 {
		t.Errorf("Param = %v, want 250", got)
	}
	if err := Configure("test-param:1:1"); err != nil {
		t.Fatal(err)
	}
	if got := p.Param(100); got != 100 {
		t.Errorf("Param default = %v, want 100", got)
	}
}

func TestConfigureRejectsMalformedSpecs(t *testing.T) {
	Register("test-valid")
	defer Reset()
	for _, spec := range []string{
		"test-valid",              // too few fields
		"test-valid:1",            // too few fields
		"test-valid:1:2:3:4",      // too many fields
		"test-valid:2:1",          // prob out of range
		"test-valid:-0.5:1",       // prob out of range
		"test-valid:x:1",          // bad prob
		"test-valid:1:notanumber", // bad seed
		"test-valid:1:1:zzz",      // bad param
		"no-such-site:1:1",        // unknown site
	} {
		if err := Configure(spec); err == nil {
			t.Errorf("Configure(%q) accepted a malformed spec", spec)
		}
	}
}

func TestConfigureUnknownSiteListsInventory(t *testing.T) {
	Register("test-inventory")
	err := Configure("definitely-unknown:1:1")
	if err == nil || !strings.Contains(err.Error(), "test-inventory") {
		t.Errorf("unknown-site error %v does not list the registered inventory", err)
	}
}

func TestConfigureAllOrNothing(t *testing.T) {
	a := Register("test-atomic-a")
	defer Reset()
	if err := Configure("test-atomic-a:1:1,bogus-site:1:1"); err == nil {
		t.Fatal("spec with an unknown site accepted")
	}
	if a.Hit() {
		t.Error("valid clause armed despite a later invalid clause")
	}
}

func TestConfigureEmptySpecIsNoop(t *testing.T) {
	if err := Configure(""); err != nil {
		t.Fatal(err)
	}
	if err := Configure("  "); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureMultipleSites(t *testing.T) {
	a, b := Register("test-multi-a"), Register("test-multi-b")
	defer Reset()
	if err := Configure("test-multi-a:1:1, test-multi-b:1:2"); err != nil {
		t.Fatal(err)
	}
	if !a.Hit() || !b.Hit() {
		t.Error("comma-separated clauses did not arm both sites")
	}
}

func TestResetDisarms(t *testing.T) {
	p := Register("test-reset")
	if err := Configure("test-reset:1:1"); err != nil {
		t.Fatal(err)
	}
	if !p.Hit() {
		t.Fatal("armed point missed")
	}
	Reset()
	if p.Hit() {
		t.Error("point still firing after Reset")
	}
	if p.Injected() != 1 {
		t.Errorf("injected = %d after Reset, want the preserved 1", p.Injected())
	}
}

func TestRegisterIdempotent(t *testing.T) {
	if Register("test-idem") != Register("test-idem") {
		t.Error("Register returned distinct points for one name")
	}
}

func TestCorruptingReaderFlipsFirstByte(t *testing.T) {
	in := []byte("DDD1rest of the payload")
	got, err := io.ReadAll(NewCorruptingReader(bytes.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != in[0]^0xff {
		t.Errorf("first byte = %#x, want %#x", got[0], in[0]^0xff)
	}
	if !bytes.Equal(got[1:], in[1:]) {
		t.Error("bytes past the first were altered")
	}
}

func TestCorruptingReaderTinyReads(t *testing.T) {
	in := []byte{0x00, 0x01, 0x02}
	cr := NewCorruptingReader(bytes.NewReader(in))
	buf := make([]byte, 1)
	var out []byte
	for {
		n, err := cr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []byte{0xff, 0x01, 0x02}
	if !bytes.Equal(out, want) {
		t.Errorf("out = %#v, want %#v", out, want)
	}
}

func BenchmarkDisarmedHit(b *testing.B) {
	p := Register("bench-disarmed")
	for i := 0; i < b.N; i++ {
		if p.Hit() {
			b.Fatal("disarmed point fired")
		}
	}
}
