// Package fault provides deterministic, seeded fault injection for
// chaos testing the long-running pipeline: named injection points
// (Points) that subsystems embed at their failure-prone sites — cache
// loads, dictionary decodes, worker loops, request handlers — and that
// an operator or test arms with a probability and a seed.
//
// Design constraints, in order:
//
//   - Zero cost when disarmed. A disarmed Point's Hit() is a single
//     atomic load and a branch, so production binaries pay nothing for
//     carrying the sites. No build tags: the same binary that serves
//     production runs the chaos suite.
//   - Deterministic. An armed Point draws from its own seeded PCG
//     stream (never the global math/rand state, never the clock), so a
//     chaos run with a fixed spec replays the same hit sequence. At
//     probability 1 no randomness is consumed at all — every call
//     hits — which is what the byte-determinism chaos assertions use.
//   - Declarative activation. Sites are armed from one spec string
//     ("site:prob:seed[:param]", comma-separated) supplied by the
//     -faults flag or the DDD_FAULTS environment variable; unknown
//     site names are an error listing the registered inventory, so a
//     typo cannot silently chaos-test nothing.
//
// Every injection increments the ddd_faults_injected_total{site=...}
// counter on the process obs registry, so an armed fault is always
// visible on /metrics.
package fault

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Point is one named injection site. Obtain one with Register at
// package init; call Hit() (or a helper built on it) at the site.
type Point struct {
	name  string
	armed atomic.Bool

	mu    sync.Mutex
	prob  float64
	param float64
	r     interface{ Float64() float64 }

	injected atomic.Int64
}

// Name returns the site name the point was registered under.
func (p *Point) Name() string { return p.name }

// Hit reports whether the fault fires at this call. Disarmed points
// return false after one atomic load. Armed points draw from the
// point's seeded stream — except at probability >= 1, where every call
// hits without consuming randomness (the deterministic chaos mode).
func (p *Point) Hit() bool {
	if !p.armed.Load() {
		return false
	}
	p.mu.Lock()
	hit := p.prob >= 1 || (p.prob > 0 && p.r != nil && p.r.Float64() < p.prob)
	p.mu.Unlock()
	if hit {
		p.injected.Add(1)
	}
	return hit
}

// Param returns the site's optional numeric parameter from the spec's
// fourth field (e.g. a stall duration in milliseconds), or def when
// the spec did not set one.
func (p *Point) Param(def float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.param == 0 {
		return def
	}
	return p.param
}

// Injected returns how many times this point has fired.
func (p *Point) Injected() int64 { return p.injected.Load() }

// arm configures and enables the point.
func (p *Point) arm(prob float64, seed uint64, param float64) {
	p.mu.Lock()
	p.prob, p.param = prob, param
	p.r = rng.New(seed)
	p.mu.Unlock()
	p.armed.Store(true)
}

// disarm turns the point off (its injected counter is preserved:
// counters are monotone).
func (p *Point) disarm() {
	p.armed.Store(false)
}

var (
	regMu  sync.Mutex
	points = map[string]*Point{}
)

// Register returns the Point for a site name, creating it on first
// use. Call it once per site from a package-level var so the site
// exists before Configure parses any spec. Registering the same name
// twice returns the same Point.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	points[name] = p
	obs.Default().CounterFunc("ddd_faults_injected_total",
		"fault injections fired, by site", obs.Labels{"site": name},
		func() float64 { return float64(p.injected.Load()) })
	return p
}

// Sites returns the registered site names, sorted — the inventory the
// -faults flag accepts.
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Configure arms points from a spec: comma-separated
// "site:prob:seed[:param]" clauses, e.g.
//
//	cache-load-error:1:42
//	slow-handler:0.25:7:250
//
// prob is a probability in [0, 1], seed a uint64 for the site's
// deterministic stream, and param an optional site-specific number
// (Point.Param). An empty spec is a no-op. Unknown sites, malformed
// clauses and out-of-range probabilities are errors and leave already
// parsed clauses unarmed — Configure arms either the whole spec or
// nothing.
func Configure(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type armReq struct {
		p     *Point
		prob  float64
		seed  uint64
		param float64
	}
	var reqs []armReq
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return fmt.Errorf("fault: clause %q is not site:prob:seed[:param]", clause)
		}
		regMu.Lock()
		p, ok := points[parts[0]]
		regMu.Unlock()
		if !ok {
			return fmt.Errorf("fault: unknown site %q (registered: %s)", parts[0], strings.Join(Sites(), ", "))
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return fmt.Errorf("fault: clause %q: probability must be in [0, 1]", clause)
		}
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("fault: clause %q: bad seed: %v", clause, err)
		}
		param := 0.0
		if len(parts) == 4 {
			param, err = strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return fmt.Errorf("fault: clause %q: bad param: %v", clause, err)
			}
		}
		reqs = append(reqs, armReq{p: p, prob: prob, seed: seed, param: param})
	}
	for _, rq := range reqs {
		rq.p.arm(rq.prob, rq.seed, rq.param)
	}
	return nil
}

// Reset disarms every registered point. Chaos tests defer it so an
// armed fault never leaks into the next test.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.disarm()
	}
}

// CorruptingReader wraps r so the first byte read is bit-flipped —
// enough to break any length-prefixed or magic-tagged format
// deterministically. Used by the dict-corrupt site to hand the
// dictionary decoder torn bytes without touching the file on disk.
type CorruptingReader struct {
	R     io.Reader
	first bool
}

// NewCorruptingReader returns a reader that flips the first byte of r.
func NewCorruptingReader(r io.Reader) *CorruptingReader {
	return &CorruptingReader{R: r}
}

func (c *CorruptingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	if !c.first && n > 0 {
		p[0] ^= 0xff
		c.first = true
	}
	return n, err
}
