package obs

import (
	"math"
	"sync"
	"testing"
)

func TestReservoirQuantilesExact(t *testing.T) {
	r := NewReservoir()
	// 1..100 in a scrambled-but-fixed order: nearest-rank quantiles of
	// the integers are the integers themselves.
	for i := 0; i < 100; i++ {
		r.Observe(float64((i*37)%100 + 1))
	}
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := r.Quantile(tc.q); got != tc.want { //lint:ignore floateq exact integral samples
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := r.Sum(); got != 5050 { //lint:ignore floateq exact integral samples
		t.Errorf("sum = %v, want 5050", got)
	}
}

func TestReservoirEmptyAndSingle(t *testing.T) {
	r := NewReservoir()
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Error("empty reservoir quantile is not NaN")
	}
	r.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := r.Quantile(q); got != 7 { //lint:ignore floateq exact single sample
			t.Errorf("q=%v of single sample = %v", q, got)
		}
	}
}

func TestReservoirObserveAfterQuantile(t *testing.T) {
	// Observations after a Quantile call (which sorts in place) must
	// still land correctly.
	r := NewReservoir()
	r.Observe(3)
	r.Observe(1)
	_ = r.Quantile(0.5)
	r.Observe(2)
	if got := r.Quantile(0.5); got != 2 { //lint:ignore floateq exact integral samples
		t.Errorf("median = %v, want 2", got)
	}
}

func TestReservoirConcurrentObserve(t *testing.T) {
	r := NewReservoir()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Fatalf("count = %d, want 800", r.Count())
	}
	if got := r.Quantile(1); got != 99 { //lint:ignore floateq exact integral samples
		t.Errorf("max = %v, want 99", got)
	}
}
