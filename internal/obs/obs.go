// Package obs is the repository's stdlib-only observability layer:
// atomic counters, gauges and fixed-bucket histograms collected in a
// registry that renders Prometheus text exposition format
// deterministically (families sorted by name, series sorted by label
// string, no timestamps), so two scrapes with no traffic in between
// are byte-identical — the same reproducibility contract the rest of
// the repo holds for its numeric output.
//
// Hot paths pay one atomic add per event (float adds are a CAS loop
// on the value's bits); all aggregation and formatting happens at
// scrape time. Derived metrics whose source of truth already lives in
// another subsystem's atomics (cache hit counts, pool queue depth)
// register as CounterFunc/GaugeFunc closures and are read only when
// rendered, so instrumenting an existing counter costs nothing on the
// hot path.
//
// The process-wide Default() registry carries cross-cutting pipeline
// counters (timing sample counts, dictionary build totals); servers
// that need scrape isolation construct their own Registry and render
// both.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches constant key/value pairs to one series. Rendered
// sorted by key, so registration order never shows in the output.
type Labels map[string]string

// addFloat accumulates v into a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Counter is a monotonically increasing float64. Add with a negative
// value panics: counters only go up, which is what lets a scraper
// compute rates across restarts of its own state.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { addFloat(&c.bits, 1) }

// Add accumulates v (panics if v < 0).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter add of negative value %v", v))
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable float64 that may go up or down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram layout for request
// latencies in seconds: 100 µs to 10 s, roughly logarithmic.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed upper-bound buckets
// (le = "less than or equal", Prometheus convention) plus a +Inf
// overflow, and tracks the observation sum. Buckets are fixed at
// construction; Observe is two atomic adds and a binary search.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric kinds, in TYPE-line spelling.
const (
	counterKind   = "counter"
	gaugeKind     = "gauge"
	histogramKind = "histogram"
)

// series is one labeled sample stream inside a family; render appends
// its exposition lines.
type series struct {
	labels string
	render func(sb *strings.Builder, name, labels string)
}

// family groups all series sharing a metric name.
type family struct {
	name, help, kind string
	series           map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is cheap and usually happens once at construction;
// collection reads atomics at scrape time.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by package-level
// pipeline counters (timing samples, dictionary builds).
func Default() *Registry { return defaultRegistry }

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels formats labels sorted by key: `{a="x",b="y"}`, or ""
// when empty.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(labelEscaper.Replace(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value; integral values print without a
// fraction and +Inf prints in le-label spelling.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// register adds a series under name, creating the family on first
// use. Conflicting kinds or duplicate label sets are programmer
// errors and panic.
func (r *Registry) register(name, help, kind string, labels Labels, render func(sb *strings.Builder, name, labels string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	if _, dup := f.series[ls]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s%s", name, ls))
	}
	f.series[ls] = &series{labels: ls, render: render}
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, counterKind, labels, func(sb *strings.Builder, name, ls string) {
		sampleLine(sb, name, ls, c.Value())
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for counters whose source of truth is an existing
// atomic elsewhere. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, counterKind, labels, func(sb *strings.Builder, name, ls string) {
		sampleLine(sb, name, ls, fn())
	})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, gaugeKind, labels, func(sb *strings.Builder, name, ls string) {
		sampleLine(sb, name, ls, g.Value())
	})
	return g
}

// GaugeFunc registers a gauge computed from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, gaugeKind, labels, func(sb *strings.Builder, name, ls string) {
		sampleLine(sb, name, ls, fn())
	})
}

// Histogram registers and returns a histogram series with the given
// upper bounds (nil = LatencyBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, histogramKind, labels, func(sb *strings.Builder, name, ls string) {
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			sampleLine(sb, name+"_bucket", withLE(ls, formatValue(bound)), float64(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		sampleLine(sb, name+"_bucket", withLE(ls, "+Inf"), float64(cum))
		sampleLine(sb, name+"_sum", ls, h.Sum())
		sampleLine(sb, name+"_count", ls, float64(cum))
	})
	return h
}

// withLE appends the le label to an already-rendered label string.
func withLE(ls, le string) string {
	if ls == "" {
		return `{le="` + le + `"}`
	}
	return ls[:len(ls)-1] + `,le="` + le + `"}`
}

func sampleLine(sb *strings.Builder, name, labels string, v float64) {
	sb.WriteString(name)
	sb.WriteString(labels)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// WriteText renders every family in exposition format: families
// sorted by name, series sorted by label string, a HELP and TYPE line
// per family, no timestamps. The output is a pure function of the
// metric values, so idle scrapes are byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := r.fams[name]
		sb.WriteString("# HELP ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(f.help)
		sb.WriteString("\n# TYPE ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(f.kind)
		sb.WriteByte('\n')
		lss := make([]string, 0, len(f.series))
		for ls := range f.series {
			lss = append(lss, ls)
		}
		sort.Strings(lss)
		for _, ls := range lss {
			s := f.series[ls]
			s.render(&sb, f.name, s.labels)
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, sb.String())
	return err
}

// requestID feeds NextRequestID.
var requestID atomic.Uint64

// NextRequestID returns a process-unique monotonically increasing id
// for scoping per-request traces and stage timers. IDs restart at 1
// each process; they order work within a run, nothing more.
func NextRequestID() uint64 { return requestID.Add(1) }
