package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StageStat accumulates one pipeline stage: total wall time, the
// number of times the stage ran, and a stage-defined item count
// (samples simulated, patterns generated) that lets a report show
// per-item cost next to per-call cost.
type StageStat struct {
	Seconds float64
	Calls   int64
	Items   int64
}

// NamedStage pairs a stage name with its accumulated stats.
type NamedStage struct {
	Name string
	StageStat
}

// Stages is a request-scoped set of per-stage wall-time accumulators:
// the measurement behind ddd-table1/ddd-diagnose --timings. Each
// Stages carries a process-unique ID (NextRequestID) so overlapping
// requests in a concurrent pipeline can be told apart in logs. Stage
// order is first-observation order, which for a sequential pipeline
// is pipeline order; all methods are safe for concurrent use.
type Stages struct {
	ID uint64

	mu     sync.Mutex
	order  []string
	byName map[string]*StageStat
}

// NewStages returns an empty accumulator with a fresh request ID.
func NewStages() *Stages {
	return &Stages{ID: NextRequestID(), byName: make(map[string]*StageStat)}
}

func (s *Stages) stat(name string) *StageStat {
	st, ok := s.byName[name]
	if !ok {
		st = &StageStat{}
		s.byName[name] = st
		s.order = append(s.order, name)
	}
	return st
}

// Observe adds one completed stage execution of duration d covering
// items work units.
func (s *Stages) Observe(name string, d time.Duration, items int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stat(name)
	st.Seconds += d.Seconds()
	st.Calls++
	st.Items += items
}

// Start begins timing one execution of a stage; the returned stop
// function records the elapsed time plus the item count the stage
// processed. Typical use:
//
//	stop := st.Start("dict_build")
//	dict, err := core.BuildDictionary(...)
//	stop(int64(cfg.Samples))
func (s *Stages) Start(name string) func(items int64) {
	begin := time.Now()
	return func(items int64) {
		s.Observe(name, time.Since(begin), items)
	}
}

// Merge folds o's stages into s (appending unseen stage names in o's
// order). Useful to aggregate per-case timings into a run total.
func (s *Stages) Merge(o *Stages) {
	for _, ns := range o.Snapshot() {
		s.mu.Lock()
		st := s.stat(ns.Name)
		st.Seconds += ns.Seconds
		st.Calls += ns.Calls
		st.Items += ns.Items
		s.mu.Unlock()
	}
}

// Snapshot returns the stages in first-observation order.
func (s *Stages) Snapshot() []NamedStage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NamedStage, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, NamedStage{Name: name, StageStat: *s.byName[name]})
	}
	return out
}

// TotalSeconds returns the summed wall time across stages.
func (s *Stages) TotalSeconds() float64 {
	t := 0.0
	for _, ns := range s.Snapshot() {
		t += ns.Seconds
	}
	return t
}

// WriteTable renders the per-stage breakdown as an aligned table with
// each stage's share of the total.
func (s *Stages) WriteTable(w io.Writer) error {
	snap := s.Snapshot()
	total := 0.0
	for _, ns := range snap {
		total += ns.Seconds
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %10s %10s %7s\n", "stage", "calls", "items", "seconds", "share")
	for _, ns := range snap {
		share := "-"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*ns.Seconds/total)
		}
		fmt.Fprintf(&sb, "%-14s %8d %10d %10.3f %7s\n", ns.Name, ns.Calls, ns.Items, ns.Seconds, share)
	}
	fmt.Fprintf(&sb, "%-14s %8s %10s %10.3f\n", "total", "", "", total)
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table (for logs and -v output).
func (s *Stages) String() string {
	var sb strings.Builder
	_ = s.WriteTable(&sb)
	return sb.String()
}
