package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderDeterministicAndSorted(t *testing.T) {
	r := NewRegistry()
	// Register out of alphabetical order on purpose.
	z := r.Counter("zz_total", "last family", nil)
	r.Gauge("mid_gauge", "middle family", Labels{"b": "2", "a": "1"})
	a := r.Counter("aa_total", "first family", Labels{"endpoint": "/x"})
	b := r.Counter("aa_total", "first family", Labels{"endpoint": "/a"})
	z.Add(3)
	a.Inc()
	b.Add(2)

	out := render(t, r)
	if out != render(t, r) {
		t.Fatal("two idle renders differ")
	}
	// Families sorted by name, series sorted by label string, labels
	// sorted by key.
	wantOrder := []string{
		"# HELP aa_total first family",
		"# TYPE aa_total counter",
		`aa_total{endpoint="/a"} 2`,
		`aa_total{endpoint="/x"} 1`,
		"# HELP mid_gauge middle family",
		"# TYPE mid_gauge gauge",
		`mid_gauge{a="1",b="2"} 0`,
		"# HELP zz_total last family",
		"# TYPE zz_total counter",
		"zz_total 3",
	}
	got := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(got) != len(wantOrder) {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(got), len(wantOrder), out)
	}
	for i, want := range wantOrder {
		if got[i] != want {
			t.Errorf("line %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c := NewRegistry().Counter("c_total", "", nil)
	c.Add(-1)
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "", Labels{"k": "v"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "", Labels{"k": "v"})
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("m", "", Labels{"k": "v"})
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-12 {
		t.Errorf("Sum = %v, want 5.565", h.Sum())
	}
	out := render(t, r)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 2`, // 0.005 and the boundary 0.01 (le is inclusive)
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		`lat_seconds_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("cf_total", "derived", nil, func() float64 { return v })
	r.GaugeFunc("gf", "derived gauge", nil, func() float64 { return -v })
	out := render(t, r)
	if !strings.Contains(out, "cf_total 7\n") || !strings.Contains(out, "gf -7\n") {
		t.Errorf("func metrics missing:\n%s", out)
	}
}

// TestConcurrentObserve is the -race workout: hammered counters,
// gauges and histograms from many goroutines must total exactly and
// render cleanly while being written.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "", nil)
	g := r.Gauge("depth", "", nil)
	h := r.Histogram("lat", "", nil, []float64{1, 2, 4})
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WriteText(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Errorf("counter = %v, want %d", c.Value(), goroutines*per)
	}
	if g.Value() != goroutines*per {
		t.Errorf("gauge = %v, want %d", g.Value(), goroutines*per)
	}
	if h.Count() != goroutines*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"path": "a\"b\\c\nd"})
	out := render(t, r)
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 0`) {
		t.Errorf("escaping wrong:\n%s", out)
	}
}

func TestStages(t *testing.T) {
	s := NewStages()
	if s.ID == 0 {
		t.Error("stages ID = 0, want a fresh request id")
	}
	if s2 := NewStages(); s2.ID == s.ID {
		t.Error("two Stages share an ID")
	}
	stop := s.Start("atpg")
	stop(12)
	s.Observe("dict_build", 250e6, 96) // 250 ms
	s.Observe("atpg", 100e6, 8)

	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "atpg" || snap[1].Name != "dict_build" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	if snap[0].Calls != 2 || snap[0].Items != 20 {
		t.Errorf("atpg stat = %+v", snap[0])
	}
	if snap[1].Seconds < 0.249 || snap[1].Seconds > 0.251 {
		t.Errorf("dict_build seconds = %v", snap[1].Seconds)
	}

	sum := NewStages()
	sum.Merge(s)
	sum.Merge(s)
	if got := sum.Snapshot()[1]; got.Calls != 2 || got.Items != 192 {
		t.Errorf("merged dict_build = %+v", got)
	}
	tbl := sum.String()
	for _, want := range []string{"stage", "atpg", "dict_build", "total", "share"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestStagesConcurrent(t *testing.T) {
	s := NewStages()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe("stage", 1000, 1)
				if i%100 == 0 {
					_ = s.TotalSeconds()
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot()[0]; got.Calls != 4000 || got.Items != 4000 {
		t.Errorf("concurrent stage = %+v", got)
	}
}
