package obs

import (
	"math"
	"sort"
	"sync"
)

// Reservoir collects every observed value and answers exact quantiles
// over them. Unlike Histogram (fixed buckets, constant memory, scrape
// friendly) it keeps the raw samples, so percentiles are exact rather
// than bucket-interpolated — the right trade for bounded-run tooling
// like the load generator's SLO gate, where the sample count is the
// request count and an approximate p99 could pass a gate the real
// p99 fails. Not for long-running servers: memory grows with the
// observation count.
type Reservoir struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// NewReservoir returns an empty reservoir.
func NewReservoir() *Reservoir {
	return &Reservoir{}
}

// Observe records one value.
func (r *Reservoir) Observe(v float64) {
	r.mu.Lock()
	r.samples = append(r.samples, v)
	r.sorted = false
	r.mu.Unlock()
}

// Count returns the number of observations.
func (r *Reservoir) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Sum returns the sum of all observations.
func (r *Reservoir) Sum() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s float64
	for _, v := range r.samples {
		s += v
	}
	return s
}

// Quantile returns the exact q-quantile (0 <= q <= 1) by the
// nearest-rank method: the smallest observed value with at least
// ceil(q*n) observations at or below it. q=0 is the minimum, q=1 the
// maximum. An empty reservoir returns NaN.
func (r *Reservoir) Quantile(q float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n == 0 {
		return math.NaN()
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return r.samples[rank-1]
}
