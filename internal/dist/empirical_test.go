package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmpiricalBasics(t *testing.T) {
	e := NewEmpirical([]float64{3, 1, 2, 5, 4})
	if e.N() != 5 {
		t.Fatalf("N = %d", e.N())
	}
	if e.Min() != 1 || e.Max() != 5 {
		t.Errorf("min/max = %v/%v", e.Min(), e.Max())
	}
	if e.Mean() != 3 {
		t.Errorf("mean = %v", e.Mean())
	}
	if !almostEq(e.Variance(), 2.5, 1e-12) {
		t.Errorf("variance = %v", e.Variance())
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	in := []float64{2, 1}
	e := NewEmpirical(in)
	in[0] = 100
	if e.Max() != 2 {
		t.Errorf("Empirical aliased its input: max = %v", e.Max())
	}
}

func TestEmpiricalEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewEmpirical(nil) should panic")
		}
	}()
	NewEmpirical(nil)
}

func TestEmpiricalCDFExceed(t *testing.T) {
	e := NewEmpirical([]float64{1, 2, 3, 4})
	cases := []struct{ x, cdf float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); !almostEq(got, c.cdf, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.cdf)
		}
		if got := e.Exceed(c.x); !almostEq(got, 1-c.cdf, 1e-12) {
			t.Errorf("Exceed(%v) = %v, want %v", c.x, got, 1-c.cdf)
		}
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	e := NewEmpirical([]float64{10, 20, 30, 40, 50})
	if q := e.Quantile(0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := e.Quantile(1); q != 50 {
		t.Errorf("q1 = %v", q)
	}
	if q := e.Quantile(0.5); q != 30 {
		t.Errorf("median = %v", q)
	}
	if q := e.Quantile(0.25); q != 20 {
		t.Errorf("q25 = %v", q)
	}
	if q := e.Quantile(0.125); !almostEq(q, 15, 1e-12) {
		t.Errorf("q12.5 = %v, want 15 (interpolated)", q)
	}
}

func TestEmpiricalHistogram(t *testing.T) {
	e := NewEmpirical([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	edges, density := e.Histogram(3)
	if len(edges) != 3 || len(density) != 3 {
		t.Fatalf("bins = %d/%d", len(edges), len(density))
	}
	// Density integrates to 1.
	w := (e.Max() - e.Min()) / 3
	total := 0.0
	for _, d := range density {
		total += d * w
	}
	if !almostEq(total, 1, 1e-9) {
		t.Errorf("histogram mass = %v, want 1", total)
	}
	// Degenerate sample.
	d := NewEmpirical([]float64{7, 7, 7})
	_, dens := d.Histogram(4)
	if dens[0] != 1 {
		t.Errorf("degenerate histogram = %v", dens)
	}
}

func TestEmpiricalKS(t *testing.T) {
	r := rng.New(5)
	n := Normal{Mu: 0, Sigma: 1}
	a := make([]float64, 20000)
	b := make([]float64, 20000)
	c := make([]float64, 20000)
	for i := range a {
		a[i] = n.Sample(r)
		b[i] = n.Sample(r)
		c[i] = n.Sample(r) + 2 // clearly shifted
	}
	ea, eb, ec := NewEmpirical(a), NewEmpirical(b), NewEmpirical(c)
	if d := ea.KS(eb); d > 0.03 {
		t.Errorf("same-dist KS = %v, want small", d)
	}
	if d := ea.KS(ec); d < 0.5 {
		t.Errorf("shifted-dist KS = %v, want large", d)
	}
	if d := ea.KS(ea); d != 0 {
		t.Errorf("self KS = %v, want 0", d)
	}
}

func TestEmpiricalQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 1+r.IntN(100))
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		e := NewEmpirical(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := e.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalCDFExceedComplement(t *testing.T) {
	f := func(seed uint64, x float64) bool {
		r := rng.New(seed)
		xs := make([]float64, 1+r.IntN(50))
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		e := NewEmpirical(xs)
		x = math.Mod(math.Abs(x), 120)
		return math.Abs(e.CDF(x)+e.Exceed(x)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEq(Variance(xs), 5.0/3.0, 1e-12) {
		t.Errorf("Variance = %v", Variance(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Errorf("empty-slice stats should be NaN")
	}
	if Variance([]float64{5}) != 0 {
		t.Errorf("single-sample variance should be 0")
	}
	if ExceedFrac(xs, 2.5) != 0.5 {
		t.Errorf("ExceedFrac = %v", ExceedFrac(xs, 2.5))
	}
	if Clamp01(-0.1) != 0 || Clamp01(1.1) != 1 || Clamp01(0.3) != 0.3 {
		t.Errorf("Clamp01 wrong")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); !almostEq(c, 1, 1e-12) {
		t.Errorf("perfect corr = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEq(c, -1, 1e-12) {
		t.Errorf("perfect anticorr = %v", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); !math.IsNaN(c) {
		t.Errorf("constant corr = %v, want NaN", c)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	Correlation(xs, []float64{1})
}
