// Package dist provides the probability-distribution substrate for the
// statistical timing model: parametric random variables (normal,
// truncated normal, uniform, point mass), empirical distributions built
// from Monte-Carlo samples, and the analytic sum/max operators (Clark's
// approximation) used by the fast statistical static timing mode.
//
// Delays are real-valued and measured in arbitrary time units (the cell
// library fixes the scale); all delay distributions used by the timing
// model are truncated at zero, matching Definition D.1 of the paper
// (delay random variables are defined over [0, +inf]).
package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Dist is a one-dimensional random variable that can be sampled and
// summarized. All delay and defect-size models implement it.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
	// Mean returns the expected value.
	Mean() float64
	// Variance returns the variance.
	Variance() float64
}

// Tail optionally reports exceedance probabilities analytically.
// Distributions that cannot do so are estimated by Monte Carlo instead.
type Tail interface {
	// Exceed returns P(X > x).
	Exceed(x float64) float64
}

// Distribution is the read-only summary surface the diagnosis core
// consumes from a timing engine: location, spread, quantiles and
// exceedance (critical) probabilities. *Empirical (Monte-Carlo
// engines) and Normal (analytic engines) both implement it, so code
// that picks a cut-off period or reads a critical probability is
// engine-agnostic.
type Distribution interface {
	// Mean returns the expected value.
	Mean() float64
	// Std returns the standard deviation.
	Std() float64
	// Quantile returns the q-quantile (0 <= q <= 1).
	Quantile(q float64) float64
	// Exceed returns P(X > x).
	Exceed(x float64) float64
}

// PointMass is the degenerate distribution concentrated at V. Circuit
// instances (Definition D.2) assign a PointMass to every arc.
type PointMass struct{ V float64 }

// Sample returns the mass point.
func (p PointMass) Sample(*rand.Rand) float64 { return p.V }

// Mean returns the mass point.
func (p PointMass) Mean() float64 { return p.V }

// Variance returns 0.
func (p PointMass) Variance() float64 { return 0 }

// Exceed returns 1 if the mass point exceeds x, else 0.
func (p PointMass) Exceed(x float64) float64 {
	if p.V > x {
		return 1
	}
	return 0
}

func (p PointMass) String() string { return fmt.Sprintf("δ(%g)", p.V) }

// Normal is the Gaussian distribution N(Mu, Sigma²).
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a normal variate.
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns Sigma².
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// Std returns Sigma.
func (n Normal) Std() float64 { return n.Sigma }

// Exceed returns P(X > x) via the complementary normal CDF.
func (n Normal) Exceed(x float64) float64 {
	if n.Sigma == 0 {
		if n.Mu > x {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the q-quantile via the probit function. q <= 0 and
// q >= 1 clamp to ∓Inf only for Sigma > 0; a degenerate normal
// (Sigma == 0) returns Mu for every q, matching PointMass semantics.
func (n Normal) Quantile(q float64) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	switch {
	case q <= 0:
		return math.Inf(-1)
	case q >= 1:
		return math.Inf(1)
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*q-1)
}

func (n Normal) String() string { return fmt.Sprintf("N(%g, %g²)", n.Mu, n.Sigma) }

// TruncNormal is a Gaussian truncated to [Lo, +inf). Sampling is by
// rejection with a clamp fallback; for the σ/µ ratios used in delay
// models (σ ≲ µ/3) rejection essentially never triggers, so the clamp
// bias is negligible while the support guarantee is absolute.
type TruncNormal struct {
	Mu    float64
	Sigma float64
	Lo    float64
}

// Sample draws a truncated normal variate (never below Lo).
func (t TruncNormal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 8; i++ {
		v := t.Mu + t.Sigma*r.NormFloat64()
		if v >= t.Lo {
			return v
		}
	}
	return t.Lo
}

// Mean returns the mean of the underlying (untruncated) normal; for the
// regimes used by the delay model the truncation shift is < 1e-3·σ.
func (t TruncNormal) Mean() float64 { return t.Mu }

// Variance returns the variance of the underlying normal.
func (t TruncNormal) Variance() float64 { return t.Sigma * t.Sigma }

// Exceed returns P(X > x) of the underlying normal renormalized over
// the truncated support.
func (t TruncNormal) Exceed(x float64) float64 {
	if x < t.Lo {
		return 1
	}
	n := Normal{t.Mu, t.Sigma}
	keep := n.Exceed(t.Lo)
	if keep == 0 {
		return 0
	}
	return n.Exceed(x) / keep
}

func (t TruncNormal) String() string {
	return fmt.Sprintf("N(%g, %g²)|[%g,∞)", t.Mu, t.Sigma, t.Lo)
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Variance returns (Hi-Lo)²/12.
func (u Uniform) Variance() float64 { d := u.Hi - u.Lo; return d * d / 12 }

// Exceed returns P(X > x).
func (u Uniform) Exceed(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 1
	case x >= u.Hi:
		return 0
	default:
		return (u.Hi - x) / (u.Hi - u.Lo)
	}
}

func (u Uniform) String() string { return fmt.Sprintf("U[%g, %g]", u.Lo, u.Hi) }

// Shifted is d translated by Offset. It models a delay-defect-affected
// arc: the model delay plus a (sampled) defect size.
type Shifted struct {
	D      Dist
	Offset float64
}

// Sample draws from D and adds Offset.
func (s Shifted) Sample(r *rand.Rand) float64 { return s.D.Sample(r) + s.Offset }

// Mean returns D's mean plus Offset.
func (s Shifted) Mean() float64 { return s.D.Mean() + s.Offset }

// Variance returns D's variance.
func (s Shifted) Variance() float64 { return s.D.Variance() }

// Exceed returns P(D+Offset > x) if D supports Tail.
func (s Shifted) Exceed(x float64) float64 {
	if t, ok := s.D.(Tail); ok {
		return t.Exceed(x - s.Offset)
	}
	return math.NaN()
}
