package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Empirical is a distribution defined by a finite sample, as produced by
// Monte-Carlo statistical timing analysis. It is the concrete form of
// the arrival-time and timing-length random variables (Ar(o), TL(p)) in
// the paper's framework: the statistical simulator draws many circuit
// instances and the resulting per-instance values form the sample.
type Empirical struct {
	xs []float64 // sorted ascending
}

// NewEmpirical builds an Empirical distribution from sample values.
// The input slice is copied and sorted. It panics on an empty sample.
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("dist: empty sample for Empirical")
	}
	xs := make([]float64, len(samples))
	copy(xs, samples)
	sort.Float64s(xs)
	return &Empirical{xs: xs}
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.xs) }

// Samples returns the sorted sample values. The slice is shared; callers
// must not mutate it.
func (e *Empirical) Samples() []float64 { return e.xs }

// Sample draws one value uniformly from the stored sample (bootstrap
// resampling).
func (e *Empirical) Sample(r *rand.Rand) float64 { return e.xs[r.IntN(len(e.xs))] }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	s := 0.0
	for _, x := range e.xs {
		s += x
	}
	return s / float64(len(e.xs))
}

// Variance returns the unbiased sample variance (0 for a single sample).
func (e *Empirical) Variance() float64 {
	n := len(e.xs)
	if n < 2 {
		return 0
	}
	m := e.Mean()
	s := 0.0
	for _, x := range e.xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation.
func (e *Empirical) Std() float64 { return math.Sqrt(e.Variance()) }

// Min returns the smallest sample value.
func (e *Empirical) Min() float64 { return e.xs[0] }

// Max returns the largest sample value.
func (e *Empirical) Max() float64 { return e.xs[len(e.xs)-1] }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// between order statistics.
func (e *Empirical) Quantile(q float64) float64 {
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	pos := q * float64(len(e.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return e.xs[lo]
	}
	frac := pos - float64(lo)
	return e.xs[lo]*(1-frac) + e.xs[hi]*frac
}

// CDF returns the empirical P(X <= x).
func (e *Empirical) CDF(x float64) float64 {
	// Count of samples <= x via binary search for the first index > x.
	n := sort.SearchFloat64s(e.xs, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.xs))
}

// Exceed returns the empirical critical probability P(X > x)
// (Definition D.6 with cut-off period x).
func (e *Empirical) Exceed(x float64) float64 { return 1 - e.CDF(x) }

func (e *Empirical) String() string {
	return fmt.Sprintf("Emp(n=%d, µ=%.4g, σ=%.4g)", e.N(), e.Mean(), e.Std())
}

// Histogram bins the sample into nbins equal-width bins over
// [Min, Max] and returns the bin left edges and normalized densities.
// With a degenerate sample (Min == Max) a single full bin is returned.
func (e *Empirical) Histogram(nbins int) (edges, density []float64) {
	if nbins < 1 {
		nbins = 1
	}
	lo, hi := e.Min(), e.Max()
	edges = make([]float64, nbins)
	density = make([]float64, nbins)
	if hi == lo { //lint:ignore floateq exact degenerate-sample guard; a tolerance would mis-bin nearly-degenerate samples
		edges[0] = lo
		density[0] = 1
		return edges, density
	}
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range e.xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		density[b]++
	}
	norm := float64(len(e.xs)) * w
	for i := range density {
		density[i] /= norm
	}
	return edges, density
}

// KS returns the two-sample Kolmogorov–Smirnov statistic between e and
// other: the sup-norm distance between their empirical CDFs. Used by
// tests to validate analytic approximations against Monte Carlo.
func (e *Empirical) KS(other *Empirical) float64 {
	i, j := 0, 0
	na, nb := len(e.xs), len(other.xs)
	d := 0.0
	for i < na && j < nb {
		var x float64
		if e.xs[i] <= other.xs[j] {
			x = e.xs[i]
		} else {
			x = other.xs[j]
		}
		for i < na && e.xs[i] <= x {
			i++
		}
		for j < nb && other.xs[j] <= x {
			j++
		}
		fa := float64(i) / float64(na)
		fb := float64(j) / float64(nb)
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
