package dist

import "math"

// DefaultTol is the tolerance used by probability comparisons when the
// caller has no better scale: ~1e4 ulps at unit scale, far below any
// statistically meaningful difference between success rates yet far
// above accumulated Clark-operator rounding.
const DefaultTol = 1e-12

// ApproxEqual reports whether a and b are equal within tol, using the
// larger of an absolute and a relative criterion so it behaves
// sensibly both near zero (probabilities) and at large magnitudes
// (accumulated path delays). It is one of the approved comparison
// helpers enforced by the floateq analyzer; see DESIGN.md.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) || math.IsNaN(diff) {
		return false
	}
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// EqualWithin reports whether a and b differ by at most eps in
// absolute value — the plain tolerance form for quantities with a
// known scale (e.g. delays in library time units).
func EqualWithin(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
