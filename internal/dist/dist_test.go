package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointMass(t *testing.T) {
	p := PointMass{V: 3.5}
	r := rng.New(1)
	if got := p.Sample(r); got != 3.5 {
		t.Fatalf("Sample = %v, want 3.5", got)
	}
	if p.Mean() != 3.5 || p.Variance() != 0 {
		t.Fatalf("moments wrong: mean=%v var=%v", p.Mean(), p.Variance())
	}
	if p.Exceed(3.4) != 1 || p.Exceed(3.5) != 0 || p.Exceed(4) != 0 {
		t.Fatalf("Exceed wrong: %v %v %v", p.Exceed(3.4), p.Exceed(3.5), p.Exceed(4))
	}
}

func TestNormalMoments(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	r := rng.New(42)
	const N = 200000
	xs := make([]float64, N)
	for i := range xs {
		xs[i] = n.Sample(r)
	}
	if m := Mean(xs); !almostEq(m, 10, 0.05) {
		t.Errorf("sample mean = %v, want ~10", m)
	}
	if s := Std(xs); !almostEq(s, 2, 0.05) {
		t.Errorf("sample std = %v, want ~2", s)
	}
}

func TestNormalExceed(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.05},
		{-1.6448536269514722, 0.95},
		{3, 0.0013498980316301},
	}
	for _, c := range cases {
		if got := n.Exceed(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Exceed(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Degenerate sigma behaves as a point mass.
	d := Normal{Mu: 2, Sigma: 0}
	if d.Exceed(1) != 1 || d.Exceed(3) != 0 {
		t.Errorf("degenerate Exceed wrong")
	}
}

func TestTruncNormalSupport(t *testing.T) {
	tn := TruncNormal{Mu: 1, Sigma: 2, Lo: 0}
	r := rng.New(7)
	for i := 0; i < 50000; i++ {
		if v := tn.Sample(r); v < 0 {
			t.Fatalf("sample %d below truncation: %v", i, v)
		}
	}
	if tn.Exceed(-1) != 1 {
		t.Errorf("Exceed below support should be 1")
	}
	// Renormalization: P(X>1 | X>=0) > P(N>1) since mass below 0 is cut.
	n := Normal{Mu: 1, Sigma: 2}
	if tn.Exceed(1) <= n.Exceed(1) {
		t.Errorf("truncated exceed %v should be > untruncated %v", tn.Exceed(1), n.Exceed(1))
	}
}

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if u.Mean() != 4 {
		t.Errorf("mean = %v", u.Mean())
	}
	if !almostEq(u.Variance(), 16.0/12.0, 1e-12) {
		t.Errorf("variance = %v", u.Variance())
	}
	if u.Exceed(1) != 1 || u.Exceed(7) != 0 || !almostEq(u.Exceed(5), 0.25, 1e-12) {
		t.Errorf("Exceed wrong")
	}
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 2 || v > 6 {
			t.Fatalf("sample out of range: %v", v)
		}
	}
}

func TestShifted(t *testing.T) {
	s := Shifted{D: Normal{Mu: 1, Sigma: 0.5}, Offset: 2}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Variance() != 0.25 {
		t.Errorf("variance = %v", s.Variance())
	}
	want := Normal{Mu: 3, Sigma: 0.5}.Exceed(3.2)
	if got := s.Exceed(3.2); !almostEq(got, want, 1e-12) {
		t.Errorf("Exceed = %v, want %v", got, want)
	}
}

// nonTail is a Dist without analytic exceedance.
type nonTail struct{}

func (nonTail) Sample(*rand.Rand) float64 { return 1 }
func (nonTail) Mean() float64             { return 1 }
func (nonTail) Variance() float64         { return 0 }

func TestShiftedExceedWithoutTail(t *testing.T) {
	s := Shifted{D: nonTail{}, Offset: 1}
	if !math.IsNaN(s.Exceed(0)) {
		t.Errorf("Exceed on tail-less dist should be NaN")
	}
}

func TestSumNormal(t *testing.T) {
	a := Normal{Mu: 3, Sigma: 1}
	b := Normal{Mu: 4, Sigma: 2}
	s := SumNormal(a, b, 0)
	if s.Mu != 7 || !almostEq(s.Sigma, math.Sqrt(5), 1e-12) {
		t.Errorf("independent sum = %+v", s)
	}
	sc := SumNormal(a, b, 1)
	if !almostEq(sc.Sigma, 3, 1e-12) {
		t.Errorf("fully correlated sum sigma = %v, want 3", sc.Sigma)
	}
}

func TestMaxNormalAgainstMC(t *testing.T) {
	a := Normal{Mu: 10, Sigma: 1}
	b := Normal{Mu: 10.5, Sigma: 1.5}
	approx, pAB := MaxNormal(a, b, 0)

	r := rng.New(99)
	const N = 300000
	xs := make([]float64, N)
	wins := 0
	for i := range xs {
		x, y := a.Sample(r), b.Sample(r)
		if x > y {
			wins++
		}
		xs[i] = math.Max(x, y)
	}
	if m := Mean(xs); !almostEq(m, approx.Mu, 0.02) {
		t.Errorf("Clark mean %v vs MC %v", approx.Mu, m)
	}
	if s := Std(xs); !almostEq(s, approx.Sigma, 0.02) {
		t.Errorf("Clark std %v vs MC %v", approx.Sigma, s)
	}
	if mcP := float64(wins) / N; !almostEq(mcP, pAB, 0.01) {
		t.Errorf("Clark P(A>B) %v vs MC %v", pAB, mcP)
	}
}

func TestMaxNormalDegenerate(t *testing.T) {
	a := Normal{Mu: 5, Sigma: 1}
	b := Normal{Mu: 3, Sigma: 1}
	m, p := MaxNormal(a, b, 1) // theta = 0: perfectly correlated equal spread
	if m != a || p != 1 {
		t.Errorf("degenerate max = %+v p=%v, want a, 1", m, p)
	}
	m2, p2 := MaxNormal(b, a, 1)
	if m2 != a || p2 != 0 {
		t.Errorf("degenerate max = %+v p=%v, want a, 0", m2, p2)
	}
}

func TestMaxNormalsFold(t *testing.T) {
	ns := []Normal{{1, 0.1}, {5, 0.1}, {3, 0.1}}
	m := MaxNormals(ns, 0)
	if !almostEq(m.Mu, 5, 0.05) {
		t.Errorf("fold mean = %v, want ~5", m.Mu)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MaxNormals(empty) should panic")
		}
	}()
	MaxNormals(nil, 0)
}

func TestMaxDominanceProperty(t *testing.T) {
	// Property: E[max(A,B)] >= max(E[A], E[B]) for any normals.
	f := func(muA, muB float64, sA, sB uint8) bool {
		a := Normal{Mu: muA, Sigma: 0.1 + float64(sA%50)/10}
		b := Normal{Mu: muB, Sigma: 0.1 + float64(sB%50)/10}
		m, p := MaxNormal(a, b, 0)
		return m.Mu >= math.Max(a.Mu, b.Mu)-1e-9 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
