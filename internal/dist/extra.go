package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Lognormal is the distribution of exp(N(Mu, Sigma²)) — a common model
// for resistive-defect sizes, whose physical size distributions are
// heavy-tailed (many near-opens, few hard opens). Mu and Sigma are the
// parameters of the underlying normal, not the mean/stddev of the
// lognormal itself; use LognormalFromMoments to parameterize by the
// latter.
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// LognormalFromMoments returns the lognormal with the given mean and
// standard deviation. It panics unless both are positive.
func LognormalFromMoments(mean, std float64) Lognormal {
	if mean <= 0 || std <= 0 {
		panic(fmt.Sprintf("dist: lognormal moments must be positive (mean=%v, std=%v)", mean, std))
	}
	v := std * std / (mean * mean)
	sigma2 := math.Log(1 + v)
	return Lognormal{Mu: math.Log(mean) - sigma2/2, Sigma: math.Sqrt(sigma2)}
}

// Sample draws a lognormal variate.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Variance returns (exp(Sigma²) − 1)·exp(2Mu + Sigma²).
func (l Lognormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Exceed returns P(X > x).
func (l Lognormal) Exceed(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.Exceed(math.Log(x))
}

func (l Lognormal) String() string { return fmt.Sprintf("LogN(%g, %g²)", l.Mu, l.Sigma) }

// Triangular is the triangular distribution on [Lo, Hi] with mode Mode
// — the classic three-point estimate for a defect-size model when only
// bounds and a most-likely value are known.
type Triangular struct {
	Lo, Mode, Hi float64
}

// Sample draws a triangular variate by inverse transform.
func (t Triangular) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	span := t.Hi - t.Lo
	if span <= 0 {
		return t.Lo
	}
	fc := (t.Mode - t.Lo) / span
	if u < fc {
		return t.Lo + math.Sqrt(u*span*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*span*(t.Hi-t.Mode))
}

// Mean returns (Lo+Mode+Hi)/3.
func (t Triangular) Mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

// Variance returns the triangular variance.
func (t Triangular) Variance() float64 {
	return (t.Lo*t.Lo + t.Mode*t.Mode + t.Hi*t.Hi -
		t.Lo*t.Mode - t.Lo*t.Hi - t.Mode*t.Hi) / 18
}

// Exceed returns P(X > x).
func (t Triangular) Exceed(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 1
	case x >= t.Hi:
		return 0
	}
	span := t.Hi - t.Lo
	if x < t.Mode {
		return 1 - (x-t.Lo)*(x-t.Lo)/(span*(t.Mode-t.Lo))
	}
	return (t.Hi - x) * (t.Hi - x) / (span * (t.Hi - t.Mode))
}

func (t Triangular) String() string {
	return fmt.Sprintf("Tri[%g, %g, %g]", t.Lo, t.Mode, t.Hi)
}
