package dist

import "math"

// Clark's approximation (C. E. Clark, "The Greatest of a Finite Set of
// Random Variables", Operations Research 1961) propagates normal
// approximations through MAX operations. It is the classic analytic
// alternative to Monte Carlo in statistical static timing analysis; the
// repository uses it as the fast STA mode and as an ablation baseline
// against the Monte-Carlo engine.

// stdNormPDF is the standard normal density φ(x).
func stdNormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// stdNormCDF is the standard normal CDF Φ(x).
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SumNormal returns the exact distribution of the sum of two jointly
// normal variables with correlation rho.
//
// Contract: for |rho| <= 1 the variance a² + b² + 2ρab is nonnegative
// by Cauchy-Schwarz, so the clamp below can only trigger on rounding
// noise (or an out-of-range rho, which callers must not pass). The
// clamp exists to keep math.Sqrt off negative epsilons — it never
// silently rescues a semantically negative variance, and the result
// is then the exact degenerate sum (Sigma = 0).
func SumNormal(a, b Normal, rho float64) Normal {
	v := a.Variance() + b.Variance() + 2*rho*a.Sigma*b.Sigma
	if v < 0 {
		v = 0
	}
	return Normal{Mu: a.Mu + b.Mu, Sigma: math.Sqrt(v)}
}

// MaxNormal returns Clark's moment-matched normal approximation of
// max(A, B) for jointly normal A, B with correlation rho, along with
// the tie probability P(A > B).
//
// Contract for the degenerate branch: theta² = Var(A−B) <= 0 means A
// and B are (numerically) perfectly correlated with equal spread, so
// A − B is the constant a.Mu − b.Mu and the max is whichever input
// has the larger mean. The tie probability is then exactly 1 when
// a.Mu > b.Mu, exactly 0 when a.Mu < b.Mu, and 1/2 at a.Mu == b.Mu —
// the two inputs are the same random variable, and downstream
// consumers (analytic criticality splits credit by tie probability)
// need the symmetric answer rather than an arbitrary winner-takes-all
// 1 or 0. The returned max distribution at the exact tie is `a`
// (== `b` in distribution).
func MaxNormal(a, b Normal, rho float64) (Normal, float64) {
	va, vb := a.Variance(), b.Variance()
	theta2 := va + vb - 2*rho*a.Sigma*b.Sigma
	if theta2 <= 0 {
		switch {
		case a.Mu > b.Mu:
			return a, 1
		case a.Mu < b.Mu:
			return b, 0
		default:
			return a, 0.5
		}
	}
	theta := math.Sqrt(theta2)
	alpha := (a.Mu - b.Mu) / theta
	phi := stdNormPDF(alpha)
	PhiA := stdNormCDF(alpha)  // P(A > B)
	PhiB := stdNormCDF(-alpha) // P(B > A)

	m1 := a.Mu*PhiA + b.Mu*PhiB + theta*phi
	m2 := (va+a.Mu*a.Mu)*PhiA + (vb+b.Mu*b.Mu)*PhiB + (a.Mu+b.Mu)*theta*phi
	v := m2 - m1*m1
	if v < 0 {
		v = 0
	}
	return Normal{Mu: m1, Sigma: math.Sqrt(v)}, PhiA
}

// MaxNormals folds MaxNormal over a set of normals assuming pairwise
// correlation rho between every pair (a simplification appropriate for
// the shared-global-factor delay model, where rho = σ_g²/(σ_g²+σ_l²)).
// It panics on an empty input.
func MaxNormals(ns []Normal, rho float64) Normal {
	if len(ns) == 0 {
		panic("dist: MaxNormals of empty set")
	}
	acc := ns[0]
	for _, n := range ns[1:] {
		acc, _ = MaxNormal(acc, n, rho)
	}
	return acc
}
