package dist

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{0, 0, DefaultTol, true},
		{1, 1, 0, true},
		{1, 1 + 1e-15, DefaultTol, true},           // last-ulp noise
		{0, 1e-13, DefaultTol, true},               // absolute near zero
		{0.3, 0.1 + 0.2, DefaultTol, true},         // classic rounding
		{1e9, 1e9 * (1 + 1e-14), DefaultTol, true}, // relative at scale
		{0.5, 0.5 + 1e-6, DefaultTol, false},
		{1, 2, DefaultTol, false},
		{math.Inf(1), math.Inf(1), DefaultTol, true},
		{math.Inf(1), 1, DefaultTol, false},
		{math.NaN(), math.NaN(), DefaultTol, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestEqualWithin(t *testing.T) {
	if !EqualWithin(1.0, 1.05, 0.1) {
		t.Error("EqualWithin(1, 1.05, 0.1) = false")
	}
	if EqualWithin(1.0, 1.2, 0.1) {
		t.Error("EqualWithin(1, 1.2, 0.1) = true")
	}
}
