package dist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLognormalFromMoments(t *testing.T) {
	l := LognormalFromMoments(2.0, 0.5)
	if !almostEq(l.Mean(), 2.0, 1e-9) {
		t.Errorf("mean = %v", l.Mean())
	}
	if !almostEq(math.Sqrt(l.Variance()), 0.5, 1e-9) {
		t.Errorf("std = %v", math.Sqrt(l.Variance()))
	}
	r := rng.New(3)
	const N = 100000
	xs := make([]float64, N)
	for i := range xs {
		xs[i] = l.Sample(r)
		if xs[i] <= 0 {
			t.Fatalf("non-positive lognormal sample")
		}
	}
	if m := Mean(xs); !almostEq(m, 2.0, 0.02) {
		t.Errorf("sample mean = %v", m)
	}
	if s := Std(xs); !almostEq(s, 0.5, 0.02) {
		t.Errorf("sample std = %v", s)
	}
}

func TestLognormalExceed(t *testing.T) {
	l := Lognormal{Mu: 0, Sigma: 1}
	if l.Exceed(-1) != 1 || l.Exceed(0) != 1 {
		t.Errorf("Exceed below support wrong")
	}
	// Median of exp(N(0,1)) is 1.
	if !almostEq(l.Exceed(1), 0.5, 1e-12) {
		t.Errorf("Exceed(median) = %v", l.Exceed(1))
	}
}

func TestLognormalPanicsOnBadMoments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("non-positive moments accepted")
		}
	}()
	LognormalFromMoments(0, 1)
}

func TestTriangularMoments(t *testing.T) {
	tr := Triangular{Lo: 1, Mode: 2, Hi: 4}
	if !almostEq(tr.Mean(), 7.0/3.0, 1e-12) {
		t.Errorf("mean = %v", tr.Mean())
	}
	r := rng.New(5)
	const N = 200000
	xs := make([]float64, N)
	for i := range xs {
		xs[i] = tr.Sample(r)
		if xs[i] < 1 || xs[i] > 4 {
			t.Fatalf("sample out of support: %v", xs[i])
		}
	}
	if m := Mean(xs); !almostEq(m, tr.Mean(), 0.01) {
		t.Errorf("sample mean %v vs %v", m, tr.Mean())
	}
	if v := Variance(xs); !almostEq(v, tr.Variance(), 0.01) {
		t.Errorf("sample var %v vs %v", v, tr.Variance())
	}
}

func TestTriangularExceedMatchesMC(t *testing.T) {
	tr := Triangular{Lo: 0, Mode: 1, Hi: 3}
	r := rng.New(7)
	const N = 100000
	for _, x := range []float64{-1, 0.5, 1, 2, 3, 5} {
		n := 0
		rr := rng.New(7)
		_ = rr
		for i := 0; i < N; i++ {
			if tr.Sample(r) > x {
				n++
			}
		}
		mc := float64(n) / N
		if !almostEq(mc, tr.Exceed(x), 0.01) {
			t.Errorf("Exceed(%v) analytic %v vs MC %v", x, tr.Exceed(x), mc)
		}
	}
}

// Property: exceedance is monotone nonincreasing for both new
// distributions.
func TestExtraExceedMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		l := LognormalFromMoments(0.5+r.Float64()*3, 0.1+r.Float64())
		tr := Triangular{Lo: r.Float64(), Mode: 1 + r.Float64(), Hi: 2.5 + r.Float64()}
		prevL, prevT := 1.1, 1.1
		for x := -0.5; x < 6; x += 0.25 {
			el, et := l.Exceed(x), tr.Exceed(x)
			if el > prevL+1e-12 || et > prevT+1e-12 {
				return false
			}
			if el < 0 || el > 1 || et < 0 || et > 1 {
				return false
			}
			prevL, prevT = el, et
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
