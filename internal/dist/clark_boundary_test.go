package dist

import (
	"math"
	"testing"
)

// Boundary tests for the documented MaxNormal degenerate contract:
// theta² <= 0 resolves by mean, with a well-defined 1/2 tie at equal
// means (the two inputs are then the same random variable).
func TestMaxNormalDegenerateTie(t *testing.T) {
	a := Normal{Mu: 4, Sigma: 2}
	m, p := MaxNormal(a, a, 1) // identical inputs, perfectly correlated
	if m != a {
		t.Errorf("degenerate tie max = %+v, want %+v", m, a)
	}
	if p != 0.5 {
		t.Errorf("degenerate tie probability = %v, want 0.5", p)
	}
	// Zero-spread inputs with equal means hit the same branch via va =
	// vb = rho·σa·σb = 0.
	z := Normal{Mu: 1, Sigma: 0}
	if m, p := MaxNormal(z, z, 0); m != z || p != 0.5 {
		t.Errorf("point-mass tie = %+v p=%v, want %+v, 0.5", m, p, z)
	}
}

// The degenerate branch must stay continuous with the generic branch:
// as theta² -> 0+ with a fixed mean gap, the tie probability tends to
// 1 (or 0), matching the branch's exact answer.
func TestMaxNormalDegenerateContinuity(t *testing.T) {
	a := Normal{Mu: 5, Sigma: 1}
	b := Normal{Mu: 3, Sigma: 1}
	for _, rho := range []float64{0.9, 0.99, 0.999999} {
		if _, p := MaxNormal(a, b, rho); p < 0.97 {
			t.Errorf("rho=%v: P(A>B) = %v, want -> 1 as theta -> 0", rho, p)
		}
	}
	if _, p := MaxNormal(a, b, 1); p != 1 {
		t.Errorf("exact degenerate P(A>B) = %v, want 1", p)
	}
}

// SumNormal's variance clamp may only ever absorb rounding noise; at
// rho = -1 with equal sigmas the difference is exactly degenerate.
func TestSumNormalAnticorrelatedDegenerate(t *testing.T) {
	a := Normal{Mu: 2, Sigma: 1.5}
	b := Normal{Mu: 7, Sigma: 1.5}
	s := SumNormal(a, b, -1)
	if s.Mu != 9 || s.Sigma != 0 {
		t.Errorf("anticorrelated sum = %+v, want N(9, 0)", s)
	}
}

func TestNormalQuantile(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	if got := n.Quantile(0.5); math.Abs(got-10) > 1e-12 {
		t.Errorf("median = %v, want 10", got)
	}
	// Round trip against Exceed: P(X > Quantile(q)) == 1-q.
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99} {
		x := n.Quantile(q)
		if got := n.Exceed(x); math.Abs(got-(1-q)) > 1e-9 {
			t.Errorf("Exceed(Quantile(%v)) = %v, want %v", q, got, 1-q)
		}
	}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Errorf("extreme quantiles should be infinite for Sigma > 0")
	}
	d := Normal{Mu: 3, Sigma: 0}
	for _, q := range []float64{0, 0.5, 1} {
		if got := d.Quantile(q); got != 3 {
			t.Errorf("degenerate Quantile(%v) = %v, want 3", q, got)
		}
	}
}

// Both engine-facing distribution types satisfy the shared surface.
var (
	_ Distribution = Normal{}
	_ Distribution = (*Empirical)(nil)
)

// FuzzMaxNormal checks NaN/Inf hygiene: for finite means, bounded
// sigmas and rho in [-1, 1], the moment-matched max must have finite
// moments, a tie probability in [0, 1], and a mean no smaller than
// either input mean minus rounding slack.
func FuzzMaxNormal(f *testing.F) {
	f.Add(0.0, 1.0, 0.0, 1.0, 0.0)
	f.Add(5.0, 1.0, 3.0, 1.0, 1.0)
	f.Add(4.0, 2.0, 4.0, 2.0, 1.0)
	f.Add(-3.0, 0.0, -3.0, 0.0, -1.0)
	f.Fuzz(func(t *testing.T, muA, sA, muB, sB, rho float64) {
		muA, sA = sanitizeMoments(muA, sA)
		muB, sB = sanitizeMoments(muB, sB)
		rho = sanitizeRho(rho)
		m, p := MaxNormal(Normal{muA, sA}, Normal{muB, sB}, rho)
		if math.IsNaN(m.Mu) || math.IsInf(m.Mu, 0) || math.IsNaN(m.Sigma) || math.IsInf(m.Sigma, 0) {
			t.Fatalf("non-finite max %+v for A=N(%v,%v²) B=N(%v,%v²) rho=%v", m, muA, sA, muB, sB, rho)
		}
		if m.Sigma < 0 {
			t.Fatalf("negative sigma %v", m.Sigma)
		}
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("tie probability %v out of [0,1]", p)
		}
		lo := math.Max(muA, muB)
		if m.Mu < lo-1e-9*(1+math.Abs(lo)) {
			t.Fatalf("E[max] = %v below max of means %v", m.Mu, lo)
		}
	})
}

// FuzzSumNormal checks the analogous hygiene for the sum operator.
func FuzzSumNormal(f *testing.F) {
	f.Add(0.0, 1.0, 0.0, 1.0, 0.0)
	f.Add(2.0, 1.5, 7.0, 1.5, -1.0)
	f.Fuzz(func(t *testing.T, muA, sA, muB, sB, rho float64) {
		muA, sA = sanitizeMoments(muA, sA)
		muB, sB = sanitizeMoments(muB, sB)
		rho = sanitizeRho(rho)
		s := SumNormal(Normal{muA, sA}, Normal{muB, sB}, rho)
		if math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0) || math.IsNaN(s.Sigma) || math.IsInf(s.Sigma, 0) {
			t.Fatalf("non-finite sum %+v", s)
		}
		if s.Sigma < 0 {
			t.Fatalf("negative sigma %v", s.Sigma)
		}
		if want := muA + muB; math.Abs(s.Mu-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("sum mean %v, want %v", s.Mu, want)
		}
	})
}

// sanitizeMoments folds arbitrary fuzz floats into the domain the
// operators are specified over: finite means, finite nonnegative
// sigmas. Out-of-domain inputs (NaN, Inf, negative sigma) are the
// caller's bug, not the operator's, so the fuzzer normalizes them
// instead of asserting on garbage-in.
func sanitizeMoments(mu, sigma float64) (float64, float64) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		mu = 0
	}
	if math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		sigma = 1
	}
	sigma = math.Abs(sigma)
	// Keep magnitudes where float64 arithmetic stays exact enough for
	// the moment identities (the delay model works in O(1..1e3) units).
	mu = math.Mod(mu, 1e6)
	sigma = math.Mod(sigma, 1e6)
	return mu, sigma
}

// sanitizeRho folds an arbitrary float into a valid correlation.
func sanitizeRho(rho float64) float64 {
	if math.IsNaN(rho) || math.IsInf(rho, 0) {
		return 0
	}
	if rho > 1 {
		return 1
	}
	if rho < -1 {
		return -1
	}
	return rho
}
