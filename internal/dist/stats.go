package dist

import "math"

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when fewer
// than two samples are given, NaN for an empty slice).
func Variance(xs []float64) float64 {
	switch len(xs) {
	case 0:
		return math.NaN()
	case 1:
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation returns the Pearson correlation coefficient between xs
// and ys. It panics if the lengths differ and returns NaN when either
// sample is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("dist: Correlation length mismatch")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ExceedFrac returns the fraction of samples strictly greater than x —
// the Monte-Carlo estimator of the critical probability P(X > x).
func ExceedFrac(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Clamp01 clamps p into [0, 1]; probability arithmetic on Monte-Carlo
// estimates can step slightly outside the interval.
func Clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
