// Package par provides the bounded fork-join helper used to fan
// Monte-Carlo samples out across CPUs. Work items are indexed, so each
// item can derive its own deterministic random stream and results land
// in preallocated slots — runs are reproducible under any GOMAXPROCS.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError is how a panic inside a For worker surfaces on the caller
// goroutine: For recovers worker panics, records the first one together
// with the index of the item that raised it, waits for the remaining
// workers to drain, and re-panics with this wrapper. Without the
// recovery, a worker panic would crash the whole process from a
// goroutine with no useful stack linkage to the For call site — and
// leave sibling workers writing into shared slots while the runtime
// unwinds.
type PanicError struct {
	// Index is the work item whose fn(i) panicked.
	Index int
	// Value is the original panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic on item %d: %v", e.Index, e.Value)
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects NumCPU). It returns when all items finish. fn
// must be safe for concurrent invocation on distinct indices.
//
// If fn panics, For re-panics on the calling goroutine with a
// *PanicError carrying the panicking item's index and the original
// panic value. When several items panic concurrently, the first
// recovered one wins; items already started still run to completion
// (or their own recovery) before For unwinds, so no worker is left
// touching caller-owned slots after For returns.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			call(i, fn, nil)
		}
		return
	}
	var firstPanic atomic.Pointer[PanicError]
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i, fn, &firstPanic)
			}
		}()
	}
	wg.Wait()
	if pe := firstPanic.Load(); pe != nil {
		panic(pe)
	}
}

// call invokes fn(i), converting a panic into a *PanicError. With a
// nil sink (the single-worker inline path) the wrapper re-panics
// immediately on the caller; otherwise the first panic is recorded for
// For to re-raise after the join, and the worker moves on so the
// remaining items still drain deterministically.
func call(i int, fn func(int), sink *atomic.Pointer[PanicError]) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pe := &PanicError{Index: i, Value: r}
		if sink == nil {
			panic(pe)
		}
		sink.CompareAndSwap(nil, pe)
	}()
	fn(i)
}
