// Package par provides the bounded fork-join helper used to fan
// Monte-Carlo samples out across CPUs. Work items are indexed, so each
// item can derive its own deterministic random stream and results land
// in preallocated slots — runs are reproducible under any GOMAXPROCS.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError is how a panic inside a For worker surfaces on the caller
// goroutine: For recovers worker panics, records the first one together
// with the index of the item that raised it, waits for the remaining
// workers to drain, and re-panics with this wrapper. Without the
// recovery, a worker panic would crash the whole process from a
// goroutine with no useful stack linkage to the For call site — and
// leave sibling workers writing into shared slots while the runtime
// unwinds.
type PanicError struct {
	// Index is the work item whose fn(i) panicked.
	Index int
	// Value is the original panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic on item %d: %v", e.Index, e.Value)
}

// Workers returns the effective worker count For/ForCtx use for n
// items: workers when positive, else GOMAXPROCS(0) — the scheduler's
// actual parallelism budget, not the machine's NumCPU, so a process
// confined with GOMAXPROCS=k never oversubscribes — clamped to n.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS(0); see Workers). It returns when
// all items finish. fn must be safe for concurrent invocation on
// distinct indices.
//
// If fn panics, For re-panics on the calling goroutine with a
// *PanicError carrying the panicking item's index and the original
// panic value. When several items panic concurrently, the first
// recovered one wins; items already started still run to completion
// (or their own recovery) before For unwinds, so no worker is left
// touching caller-owned slots after For returns.
func For(n, workers int, fn func(i int)) {
	_, _ = ForCtx(context.Background(), n, workers, fn)
}

// ForCtx is For with cooperative cancellation: workers check ctx
// between items and stop claiming new ones once ctx is done. Items
// already started run to completion — fn is never interrupted mid-item
// — so every slot written by fn is fully written. It returns the
// number of items that completed and ctx.Err() (nil when all n items
// ran). The completed count is exact but which items completed under a
// mid-run cancellation depends on scheduling; callers that need a
// usable partial result must track per-item completion themselves.
//
// Panic semantics match For: the first recovered worker panic
// re-panics on the caller as a *PanicError after the join.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) (int, error) {
	if n <= 0 {
		return 0, ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		done := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return done, err
			}
			call(i, fn, nil)
			done++
		}
		return done, ctx.Err()
	}
	var firstPanic atomic.Pointer[PanicError]
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i, fn, &firstPanic)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if pe := firstPanic.Load(); pe != nil {
		panic(pe)
	}
	return int(completed.Load()), ctx.Err()
}

// ForWorkerCtx is ForCtx for callers that keep per-worker scratch: fn
// receives the worker index w in addition to the item index i, with
// 0 <= w < Workers(workers, n). Each worker invokes fn sequentially,
// so state keyed by w (reusable buffers, RNG streams, simulation
// engines) needs no further synchronization; items are still claimed
// dynamically, so which items a worker sees is scheduling-dependent —
// results must not depend on the (w, i) pairing.
//
// Cancellation, completion counting, and panic semantics match ForCtx.
func ForWorkerCtx(ctx context.Context, n, workers int, fn func(w, i int)) (int, error) {
	if n <= 0 {
		return 0, ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		done := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return done, err
			}
			call(i, func(i int) { fn(0, i) }, nil)
			done++
		}
		return done, ctx.Err()
	}
	var firstPanic atomic.Pointer[PanicError]
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i, func(i int) { fn(w, i) }, &firstPanic)
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if pe := firstPanic.Load(); pe != nil {
		panic(pe)
	}
	return int(completed.Load()), ctx.Err()
}

// call invokes fn(i), converting a panic into a *PanicError. With a
// nil sink (the single-worker inline path) the wrapper re-panics
// immediately on the caller; otherwise the first panic is recorded for
// For to re-raise after the join, and the worker moves on so the
// remaining items still drain deterministically.
func call(i int, fn func(int), sink *atomic.Pointer[PanicError]) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pe := &PanicError{Index: i, Value: r}
		if sink == nil {
			panic(pe)
		}
		sink.CompareAndSwap(nil, pe)
	}()
	fn(i)
}
