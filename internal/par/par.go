// Package par provides the bounded fork-join helper used to fan
// Monte-Carlo samples out across CPUs. Work items are indexed, so each
// item can derive its own deterministic random stream and results land
// in preallocated slots — runs are reproducible under any GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects NumCPU). It returns when all items finish. fn
// must be safe for concurrent invocation on distinct indices.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
