package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Errorf("fn called for empty range")
	}
}

func TestForSingleItem(t *testing.T) {
	var sum atomic.Int64
	For(1, 8, func(i int) { sum.Add(int64(i + 7)) })
	if sum.Load() != 7 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int32
	For(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Index != 5 {
					t.Errorf("workers=%d: Index = %d, want 5", workers, pe.Index)
				}
				if pe.Value != "boom" {
					t.Errorf("workers=%d: Value = %v, want boom", workers, pe.Value)
				}
				want := "par: panic on item 5: boom"
				if pe.Error() != want {
					t.Errorf("workers=%d: Error() = %q, want %q", workers, pe.Error(), want)
				}
			}()
			For(8, workers, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForPanicDrainsRemainingItems(t *testing.T) {
	// Multi-worker: items other than the panicking one must still run
	// exactly once before For re-panics — no worker abandons the queue.
	var count atomic.Int32
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		For(64, 4, func(i int) {
			if i == 0 {
				panic("first")
			}
			count.Add(1)
		})
	}()
	if got := count.Load(); got != 63 {
		t.Errorf("non-panicking items run = %d, want 63", got)
	}
}

func TestForCtxCompletesAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 500
		hits := make([]atomic.Int32, n)
		done, err := ForCtx(context.Background(), n, workers, func(i int) { hits[i].Add(1) })
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if done != n {
			t.Fatalf("workers=%d: done = %d, want %d", workers, done, n)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var count atomic.Int32
		done, err := ForCtx(ctx, 100, workers, func(int) { count.Add(1) })
		if err == nil {
			t.Fatalf("workers=%d: err = nil, want context.Canceled", workers)
		}
		if done != int(count.Load()) {
			t.Errorf("workers=%d: done = %d but fn ran %d times", workers, done, count.Load())
		}
		if count.Load() != 0 {
			t.Errorf("workers=%d: fn ran %d times on a dead context", workers, count.Load())
		}
	}
}

func TestForCtxCancelMidRunReturnsPartialCount(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var count atomic.Int32
	done, err := ForCtx(ctx, 1000, 4, func(i int) {
		if count.Add(1) == 8 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("err = nil after mid-run cancel")
	}
	if done != int(count.Load()) {
		t.Errorf("done = %d, fn completed %d items", done, count.Load())
	}
	if done == 0 || done >= 1000 {
		t.Errorf("done = %d, want a partial count", done)
	}
}

func TestForCtxSingleWorkerStopsBetweenItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	done, err := ForCtx(ctx, 100, 1, func(i int) {
		ran++
		if i == 9 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("err = nil")
	}
	if done != 10 || ran != 10 {
		t.Errorf("done/ran = %d/%d, want 10/10 (cancel takes effect before the next item)", done, ran)
	}
}

func TestWorkersClampsToGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	if got := Workers(0, 1000); got != 2 {
		t.Errorf("Workers(0, 1000) = %d under GOMAXPROCS(2), want 2", got)
	}
	if got := Workers(-3, 1000); got != 2 {
		t.Errorf("Workers(-3, 1000) = %d under GOMAXPROCS(2), want 2", got)
	}
	if got := Workers(0, 1); got != 1 {
		t.Errorf("Workers(0, 1) = %d, want 1 (clamped to n)", got)
	}
	if got := Workers(7, 3); got != 3 {
		t.Errorf("Workers(7, 3) = %d, want 3", got)
	}
	if got := Workers(5, 100); got != 5 {
		t.Errorf("Workers(5, 100) = %d, want 5", got)
	}
}

func TestForWorkersZeroBoundedConcurrency(t *testing.T) {
	// workers <= 0 must clamp to GOMAXPROCS(0), not NumCPU: with
	// GOMAXPROCS(2) no more than 2 items may ever be in flight.
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	var inFlight, peak atomic.Int32
	For(200, 0, func(int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrency = %d under GOMAXPROCS(2), want <= 2", got)
	}
}

func TestForWorkerCtxCoversAllIndicesWithValidWorkerIDs(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 500
		w := Workers(workers, n)
		hits := make([]atomic.Int32, n)
		var badWorker atomic.Int32
		done, err := ForWorkerCtx(context.Background(), n, workers, func(wk, i int) {
			if wk < 0 || wk >= w {
				badWorker.Store(1)
			}
			hits[i].Add(1)
		})
		if err != nil || done != n {
			t.Fatalf("workers=%d: done=%d err=%v", workers, done, err)
		}
		if badWorker.Load() != 0 {
			t.Fatalf("workers=%d: worker id out of [0,%d)", workers, w)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForWorkerCtxScratchNeedsNoLocking(t *testing.T) {
	// Per-worker accumulators written without synchronization must be
	// race-free (verified under -race) and sum to the full range.
	n, workers := 2000, 4
	w := Workers(workers, n)
	sums := make([]int64, w)
	done, err := ForWorkerCtx(context.Background(), n, workers, func(wk, i int) {
		sums[wk] += int64(i)
	})
	if err != nil || done != n {
		t.Fatalf("done=%d err=%v", done, err)
	}
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * int64(n-1) / 2; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestForWorkerCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := atomic.Int32{}
	done, err := ForWorkerCtx(ctx, 100, 4, func(_, _ int) { called.Add(1) })
	if err == nil {
		t.Fatal("expected context error")
	}
	if done != 0 && int(called.Load()) != done {
		t.Fatalf("done=%d calls=%d", done, called.Load())
	}
}
