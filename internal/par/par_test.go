package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Errorf("fn called for empty range")
	}
}

func TestForSingleItem(t *testing.T) {
	var sum atomic.Int64
	For(1, 8, func(i int) { sum.Add(int64(i + 7)) })
	if sum.Load() != 7 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int32
	For(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d", count.Load())
	}
}
