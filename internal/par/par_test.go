package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(int) { called = true })
	For(-5, 4, func(int) { called = true })
	if called {
		t.Errorf("fn called for empty range")
	}
}

func TestForSingleItem(t *testing.T) {
	var sum atomic.Int64
	For(1, 8, func(i int) { sum.Add(int64(i + 7)) })
	if sum.Load() != 7 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestForMoreWorkersThanItems(t *testing.T) {
	var count atomic.Int32
	For(3, 100, func(int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d", count.Load())
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Index != 5 {
					t.Errorf("workers=%d: Index = %d, want 5", workers, pe.Index)
				}
				if pe.Value != "boom" {
					t.Errorf("workers=%d: Value = %v, want boom", workers, pe.Value)
				}
				want := "par: panic on item 5: boom"
				if pe.Error() != want {
					t.Errorf("workers=%d: Error() = %q, want %q", workers, pe.Error(), want)
				}
			}()
			For(8, workers, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForPanicDrainsRemainingItems(t *testing.T) {
	// Multi-worker: items other than the panicking one must still run
	// exactly once before For re-panics — no worker abandons the queue.
	var count atomic.Int32
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		For(64, 4, func(i int) {
			if i == 0 {
				panic("first")
			}
			count.Add(1)
		})
	}()
	if got := count.Load(); got != 63 {
		t.Errorf("non-panicking items run = %d, want 63", got)
	}
}
