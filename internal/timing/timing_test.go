package timing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/benchfmt"
	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/synth"
)

func chainCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	// a -> n1 -> n2 -> o : a pure chain with known arc count.
	src := "INPUT(a)\nOUTPUT(n2)\nn1 = NOT(a)\nn2 = NOT(n1)\n"
	c, err := benchfmt.ParseString(src, "chain", false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewModelNominals(t *testing.T) {
	c := chainCircuit(t)
	p := DefaultParams()
	m := NewModel(c, p)
	if len(m.Nominal) != len(c.Arcs) {
		t.Fatalf("nominal count mismatch")
	}
	for i := range c.Arcs {
		to := &c.Gates[c.Arcs[i].To]
		if to.Type == circuit.Output {
			if m.Nominal[i] != p.PortDelay {
				t.Errorf("port arc nominal = %v", m.Nominal[i])
			}
		} else if m.Nominal[i] <= 0 {
			t.Errorf("arc %d nominal = %v", i, m.Nominal[i])
		}
	}
}

func TestNominalLoadAndFaninScaling(t *testing.T) {
	// g has fanout 2 (drives h and k): arcs into h and k see load scaling.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(h)
OUTPUT(k)
g = NAND(a, b)
h = NAND(g, a)
k = NAND(g, b)
w = NAND(a, b, g)
OUTPUT(w)
`
	c, err := benchfmt.ParseString(src, "load", false)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	m := NewModel(c, p)
	h, _ := c.GateByName("h")
	g, _ := c.GateByName("g")
	// Arc g->h: driver g has fanout 3 (h, k, w) -> two extra fanouts.
	want := p.UnitDelay * (1 + p.LoadFactor*2)
	got := m.Nominal[h.InArcs[0]] - p.WireDelay
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("loaded arc nominal = %v, want %v", got, want)
	}
	// Arc a->g: driver a fanout 3 (g, h, w)... check fanin scaling on w (3 inputs).
	w, _ := c.GateByName("w")
	aFan := len(c.Gates[c.Inputs[0]].Fanout)
	want = p.UnitDelay * (1 + p.FaninFactor*1) * (1 + p.LoadFactor*float64(aFan-1))
	got = m.Nominal[w.InArcs[0]] - p.WireDelay
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("3-input arc nominal = %v, want %v", got, want)
	}
	_ = g
}

func TestSampleInstancePositiveAndVaried(t *testing.T) {
	c, err := synth.GenerateNamed("mini", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	r := rng.New(10)
	in1 := m.SampleInstance(r)
	in2 := m.SampleInstance(r)
	diff := false
	for i := range in1.Delays {
		if in1.Delays[i] <= 0 {
			t.Fatalf("non-positive delay %v at arc %d", in1.Delays[i], i)
		}
		if in1.Delays[i] != in2.Delays[i] {
			diff = true
		}
	}
	if !diff {
		t.Errorf("two samples identical")
	}
}

func TestSampleInstanceSeededDeterministic(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	a := m.SampleInstanceSeeded(99, 3)
	b := m.SampleInstanceSeeded(99, 3)
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatalf("seeded instance not deterministic at arc %d", i)
		}
	}
}

func TestGlobalCorrelation(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	// Empirical correlation between two arcs across instances should be
	// near the theoretical rho.
	const N = 4000
	a := make([]float64, N)
	b := make([]float64, N)
	for s := 0; s < N; s++ {
		in := m.SampleInstanceSeeded(1234, uint64(s))
		a[s] = in.Delays[0] / m.Nominal[0]
		b[s] = in.Delays[len(in.Delays)/2] / m.Nominal[len(in.Delays)/2]
	}
	rho := dist.Correlation(a, b)
	want := m.Correlation()
	if math.Abs(rho-want) > 0.06 {
		t.Errorf("empirical rho = %v, want ~%v", rho, want)
	}
}

func TestWithDefect(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	d := in.WithDefect(3, 2.5)
	if d.Delays[3] != in.Delays[3]+2.5 {
		t.Errorf("defect not applied")
	}
	for i := range in.Delays {
		if i != 3 && d.Delays[i] != in.Delays[i] {
			t.Errorf("defect leaked to arc %d", i)
		}
	}
	if in.Delays[3] != m.Nominal[3] {
		t.Errorf("WithDefect mutated the original")
	}
}

func TestArrivalTimesChain(t *testing.T) {
	c := chainCircuit(t)
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	arr := m.ArrivalTimes(in)
	n2, _ := c.GateByName("n2")
	want := in.Delays[0] + in.Delays[1] // two chained NOT arcs
	// Arc order: arcs created per gate in order; find by structure.
	n1, _ := c.GateByName("n1")
	want = in.Delays[n1.InArcs[0]] + in.Delays[n2.InArcs[0]]
	if math.Abs(arr[n2.ID]-want) > 1e-12 {
		t.Errorf("chain arrival = %v, want %v", arr[n2.ID], want)
	}
	port := c.Outputs[0]
	if arr[port] <= arr[n2.ID] {
		t.Errorf("port arrival not after driver")
	}
}

func TestArrivalTimesIsMaxOverPaths(t *testing.T) {
	// Diamond: o = AND(slow, fast) where slow path has 2 gates.
	src := "INPUT(a)\nOUTPUT(o)\nf = BUF(a)\ns1 = NOT(a)\ns2 = NOT(s1)\no = AND(f, s2)\n"
	c, err := benchfmt.ParseString(src, "diamond", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	arr := m.ArrivalTimes(in)
	o, _ := c.GateByName("o")
	s2, _ := c.GateByName("s2")
	f, _ := c.GateByName("f")
	wantSlow := arr[s2.ID] + in.Delays[o.InArcs[1]]
	wantFast := arr[f.ID] + in.Delays[o.InArcs[0]]
	if arr[o.ID] != math.Max(wantSlow, wantFast) {
		t.Errorf("arrival = %v, want max(%v, %v)", arr[o.ID], wantSlow, wantFast)
	}
}

func TestMonteCarloSTA(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	res := m.MonteCarloSTA(500, 77, 0)
	if len(res.Arrivals) != len(c.Outputs) {
		t.Fatalf("arrival count mismatch")
	}
	// Circuit delay must stochastically dominate every output arrival.
	for i, a := range res.Arrivals {
		if res.CircuitDelay.Mean() < a.Mean()-1e-9 {
			t.Errorf("circuit delay mean below output %d mean", i)
		}
		if res.CircuitDelay.Max() < a.Max()-1e-9 {
			t.Errorf("circuit delay max below output %d max", i)
		}
	}
	// Critical probability is monotone nonincreasing in clk.
	prev := 1.0
	for clk := res.CircuitDelay.Min(); clk <= res.CircuitDelay.Max(); clk += (res.CircuitDelay.Max() - res.CircuitDelay.Min()) / 10 {
		p := res.CriticalProb(clk)
		if p > prev+1e-12 {
			t.Errorf("critical probability not monotone at clk=%v", clk)
		}
		prev = p
	}
}

func TestMonteCarloSTADeterministicAcrossWorkers(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	a := m.MonteCarloSTA(300, 5, 1)
	b := m.MonteCarloSTA(300, 5, 4)
	if a.CircuitDelay.Mean() != b.CircuitDelay.Mean() {
		t.Errorf("MC STA depends on worker count: %v vs %v", a.CircuitDelay.Mean(), b.CircuitDelay.Mean())
	}
}

func TestClarkSTAAgainstMC(t *testing.T) {
	c, _ := synth.GenerateNamed("small", 6)
	m := NewModel(c, DefaultParams())
	_, clark := m.ClarkSTA()
	mc := m.MonteCarloSTA(3000, 11, 0)
	// Clark mean within a few percent of MC mean; sigma same order.
	if rel := math.Abs(clark.Mu-mc.CircuitDelay.Mean()) / mc.CircuitDelay.Mean(); rel > 0.10 {
		t.Errorf("Clark mean off by %.1f%% (clark %v, mc %v)", rel*100, clark.Mu, mc.CircuitDelay.Mean())
	}
	mcStd := mc.CircuitDelay.Std()
	if clark.Sigma < mcStd/3 || clark.Sigma > mcStd*3 {
		t.Errorf("Clark sigma %v vs MC %v", clark.Sigma, mcStd)
	}
}

func TestTimingLengthAndPathDelay(t *testing.T) {
	c := chainCircuit(t)
	m := NewModel(c, DefaultParams())
	n1, _ := c.GateByName("n1")
	n2, _ := c.GateByName("n2")
	port := &c.Gates[c.Outputs[0]]
	path := []circuit.ArcID{n1.InArcs[0], n2.InArcs[0], port.InArcs[0]}
	tl := m.TimingLength(path, 800, 3)
	wantMean := m.Nominal[path[0]] + m.Nominal[path[1]] + m.Nominal[path[2]]
	if math.Abs(tl.Mean()-wantMean)/wantMean > 0.05 {
		t.Errorf("TL mean = %v, want ~%v", tl.Mean(), wantMean)
	}
	in := m.NominalInstance()
	if got := PathDelay(in, path); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("PathDelay = %v, want %v", got, wantMean)
	}
}

func TestSuggestClock(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	res := m.MonteCarloSTA(2000, rng.Derive(9, 0x51a9), 0)
	clk95 := m.SuggestClock(0.95, 2000, 9)
	if p := res.CircuitDelay.Exceed(clk95); math.Abs(p-0.05) > 0.02 {
		t.Errorf("clk95 exceedance = %v, want ~0.05", p)
	}
	clk50 := m.SuggestClock(0.5, 2000, 9)
	if clk50 >= clk95 {
		t.Errorf("quantiles out of order: %v >= %v", clk50, clk95)
	}
}

// Property: arrival times are monotone in arc delays — increasing any
// arc delay never decreases any arrival time.
func TestArrivalMonotoneProperty(t *testing.T) {
	c, _ := synth.GenerateNamed("mini", 4)
	m := NewModel(c, DefaultParams())
	base := m.NominalInstance()
	baseArr := m.ArrivalTimes(base)
	f := func(arcIdx uint16, bump uint8) bool {
		arc := circuit.ArcID(int(arcIdx) % len(base.Delays))
		mod := base.WithDefect(arc, 0.1+float64(bump)/50)
		arr := m.ArrivalTimes(mod)
		for i := range arr {
			if arr[i] < baseArr[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
