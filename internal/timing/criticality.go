package timing

import (
	"context"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/par"
)

// Statistical criticality (the quantity behind the paper's companion
// path-selection work [16]): the probability, over manufacturing
// variation, that an arc lies on the circuit's critical (longest)
// path. Deterministic STA reports one critical path; under variation
// the critical path wanders, and arcs are critical with probabilities
// that this analysis estimates by Monte Carlo.

// Criticality holds per-arc critical-path membership probabilities.
type Criticality struct {
	Prob []float64 // indexed by ArcID
}

// MonteCarloCriticality samples nSamples instances; on each, it
// computes arrival times, walks the critical path backward from the
// latest output, and counts each traversed arc. Workers bound the
// parallelism (0 = GOMAXPROCS, see par.Workers).
//
// nSamples <= 0 returns the zero-value Criticality (every probability
// zero): no samples means no evidence, and an estimate over an empty
// sample set is the empty estimate, never a division by zero.
func (m *Model) MonteCarloCriticality(nSamples int, seed uint64, workers int) *Criticality {
	cr, _ := m.MonteCarloCriticalityCtx(context.Background(), nSamples, seed, workers)
	return cr
}

// MonteCarloCriticalityCtx is MonteCarloCriticality with cooperative
// cancellation: workers check ctx between sample blocks and stop early
// when it is done. A cancelled run returns (nil, ctx.Err()) — a
// partial criticality estimate would be silently biased toward the
// samples that happened to finish, so none is returned.
//
// Samples are propagated in blocks on reusable per-worker scratch
// (see kernel.go); per-arc counts accumulate in int64 per worker and
// are summed exactly before the single division by nSamples, so the
// estimate is bit-identical under any worker count or block width.
func (m *Model) MonteCarloCriticalityCtx(ctx context.Context, nSamples int, seed uint64, workers int) (*Criticality, error) {
	if nSamples <= 0 {
		return &Criticality{Prob: make([]float64, len(m.C.Arcs))}, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		critSeconds.Add(time.Since(start).Seconds())
	}()
	critSamples.Add(float64(nSamples))
	block := DefaultBlock
	nBlocks := (nSamples + block - 1) / block
	nWorkers := par.Workers(workers, nBlocks)
	scratches := make([]*Scratch, nWorkers)
	counts := make([][]int64, nWorkers)
	defer func() {
		for _, sc := range scratches {
			if sc != nil {
				m.releaseScratch(sc)
			}
		}
	}()
	if _, err := par.ForWorkerCtx(ctx, nBlocks, workers, func(w, j int) {
		sc := scratches[w]
		if sc == nil {
			sc = m.acquireScratch(block)
			scratches[w] = sc
			counts[w] = make([]int64, len(m.C.Arcs))
		}
		s0 := j * block
		nb := block
		if s0+nb > nSamples {
			nb = nSamples - s0
		}
		arrivalEvals.Add(float64(nb))
		m.sampleBlock(sc, seed, s0, nb)
		m.propagateBlock(sc, nb)
		m.backtraceBlock(sc, nb, counts[w])
	}); err != nil {
		return nil, err
	}
	total := make([]int64, len(m.C.Arcs))
	for _, cnt := range counts {
		for i, v := range cnt {
			total[i] += v
		}
	}
	cr := &Criticality{Prob: make([]float64, len(m.C.Arcs))}
	for i, v := range total {
		cr.Prob[i] = float64(v) / float64(nSamples)
	}
	return cr, nil
}

// Top returns the k most critical arcs, most probable first (ties by
// ascending arc ID).
func (cr *Criticality) Top(k int) []circuit.ArcID {
	type pair struct {
		a circuit.ArcID
		p float64
	}
	ps := make([]pair, 0, len(cr.Prob))
	for i, p := range cr.Prob {
		if p > 0 {
			ps = append(ps, pair{a: circuit.ArcID(i), p: p})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].p > ps[j].p {
			return true
		}
		if ps[i].p < ps[j].p {
			return false
		}
		return ps[i].a < ps[j].a
	})
	if len(ps) > k {
		ps = ps[:k]
	}
	out := make([]circuit.ArcID, len(ps))
	for i, p := range ps {
		out[i] = p.a
	}
	return out
}
