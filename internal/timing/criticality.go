package timing

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/par"
)

// Statistical criticality (the quantity behind the paper's companion
// path-selection work [16]): the probability, over manufacturing
// variation, that an arc lies on the circuit's critical (longest)
// path. Deterministic STA reports one critical path; under variation
// the critical path wanders, and arcs are critical with probabilities
// that this analysis estimates by Monte Carlo.

// Criticality holds per-arc critical-path membership probabilities.
type Criticality struct {
	Prob []float64 // indexed by ArcID
}

// critCtxStride is how many samples a MonteCarloCriticalityCtx worker
// runs between cancellation checks: frequent enough that a cancel
// lands within ~1k samples of work per worker, rare enough that the
// atomic load never shows up next to a full timing walk.
const critCtxStride = 1024

// MonteCarloCriticality samples nSamples instances; on each, it
// computes arrival times, walks the critical path backward from the
// latest output, and counts each traversed arc. Workers bound the
// parallelism (0 = GOMAXPROCS, see par.Workers).
//
// nSamples <= 0 returns the zero-value Criticality (every probability
// zero): no samples means no evidence, and an estimate over an empty
// sample set is the empty estimate, never a division by zero.
func (m *Model) MonteCarloCriticality(nSamples int, seed uint64, workers int) *Criticality {
	cr, _ := m.MonteCarloCriticalityCtx(context.Background(), nSamples, seed, workers)
	return cr
}

// MonteCarloCriticalityCtx is MonteCarloCriticality with cooperative
// cancellation: each worker checks ctx every critCtxStride samples and
// stops early when it is done. A cancelled run returns (nil, ctx.Err())
// — a partial criticality estimate would be silently biased toward the
// samples that happened to finish, so none is returned.
func (m *Model) MonteCarloCriticalityCtx(ctx context.Context, nSamples int, seed uint64, workers int) (*Criticality, error) {
	if nSamples <= 0 {
		return &Criticality{Prob: make([]float64, len(m.C.Arcs))}, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		critSeconds.Add(time.Since(start).Seconds())
	}()
	critSamples.Add(float64(nSamples))
	workers = par.Workers(workers, nSamples)
	counts := make([][]int32, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			cnt := make([]int32, len(m.C.Arcs))
			counts[w] = cnt
			done := 0
			for s := w; s < nSamples; s += workers {
				if done%critCtxStride == 0 && ctx.Err() != nil {
					return
				}
				done++
				inst := m.SampleInstanceSeeded(seed, uint64(s))
				arr := m.ArrivalTimes(inst)
				// Latest output; deterministic tie-break on gate ID.
				worst := m.C.Outputs[0]
				for _, o := range m.C.Outputs[1:] {
					if arr[o] > arr[worst] {
						worst = o
					}
				}
				// Walk backward choosing, at each gate, the pin that
				// realizes the arrival time.
				g := worst
				for len(m.C.Gates[g].Fanin) > 0 {
					gate := &m.C.Gates[g]
					bestPin := 0
					bestT := arr[gate.Fanin[0]] + inst.Delays[gate.InArcs[0]]
					for k := 1; k < len(gate.Fanin); k++ {
						if t := arr[gate.Fanin[k]] + inst.Delays[gate.InArcs[k]]; t > bestT {
							bestT = t
							bestPin = k
						}
					}
					cnt[gate.InArcs[bestPin]]++
					g = gate.Fanin[bestPin]
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cr := &Criticality{Prob: make([]float64, len(m.C.Arcs))}
	inv := 1.0 / float64(nSamples)
	for _, cnt := range counts {
		for i, v := range cnt {
			cr.Prob[i] += float64(v) * inv
		}
	}
	return cr, nil
}

// Top returns the k most critical arcs, most probable first (ties by
// ascending arc ID).
func (cr *Criticality) Top(k int) []circuit.ArcID {
	type pair struct {
		a circuit.ArcID
		p float64
	}
	ps := make([]pair, 0, len(cr.Prob))
	for i, p := range cr.Prob {
		if p > 0 {
			ps = append(ps, pair{a: circuit.ArcID(i), p: p})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].p > ps[j].p {
			return true
		}
		if ps[i].p < ps[j].p {
			return false
		}
		return ps[i].a < ps[j].a
	})
	if len(ps) > k {
		ps = ps[:k]
	}
	out := make([]circuit.ArcID, len(ps))
	for i, p := range ps {
		out[i] = p.a
	}
	return out
}
