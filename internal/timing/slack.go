package timing

import "repro/internal/circuit"

// Slack analysis on a fixed-delay instance: the classic STA required-
// time computation. An arc's slack is how much extra delay it could
// absorb before some output misses the cut-off period — the
// deterministic counterpart of the defect-detectability questions the
// statistical framework answers in distribution.

// Slacks computes per-arc slack for the instance at cut-off clk:
// slack(a) = RAT(a.To) − (AT(a.From) + d(a)), where the required
// arrival time is propagated backward from clk at every output port.
// Arcs that cannot reach any output have the sentinel slack clk.
func (m *Model) Slacks(in *Instance, clk float64) []float64 {
	c := m.C
	at := m.ArrivalTimes(in)
	// Required arrival time at each gate's *output*.
	rat := make([]float64, len(c.Gates))
	const inf = 1e300
	for i := range rat {
		rat[i] = inf
	}
	for _, o := range c.Outputs {
		rat[o] = clk
	}
	for i := len(c.Order) - 1; i >= 0; i-- {
		gid := c.Order[i]
		g := &c.Gates[gid]
		for k, fi := range g.Fanin {
			if r := rat[gid] - in.Delays[g.InArcs[k]]; r < rat[fi] {
				rat[fi] = r
			}
		}
	}
	slacks := make([]float64, len(c.Arcs))
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if rat[a.To] >= inf {
			slacks[i] = clk // unobservable arc: defined, harmless slack
			continue
		}
		slacks[i] = rat[a.To] - (at[a.From] + in.Delays[a.ID])
	}
	return slacks
}

// MinSlackArcs returns the k arcs with the smallest slack, ascending.
func MinSlackArcs(slacks []float64, k int) []circuit.ArcID {
	type pair struct {
		a circuit.ArcID
		s float64
	}
	ps := make([]pair, len(slacks))
	for i, s := range slacks {
		ps[i] = pair{a: circuit.ArcID(i), s: s}
	}
	// Partial selection sort is fine for small k.
	if k > len(ps) {
		k = len(ps)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(ps); j++ {
			switch {
			case ps[j].s < ps[best].s:
				best = j
			case ps[best].s < ps[j].s:
				// keep best
			case ps[j].a < ps[best].a:
				best = j
			}
		}
		ps[i], ps[best] = ps[best], ps[i]
	}
	out := make([]circuit.ArcID, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].a
	}
	return out
}
