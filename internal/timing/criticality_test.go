package timing

import (
	"math"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/synth"
)

func TestCriticalityChainIsCertain(t *testing.T) {
	// A pure chain: every arc is on the critical path of every sample.
	src := "INPUT(a)\nOUTPUT(n2)\nn1 = NOT(a)\nn2 = NOT(n1)\n"
	c, err := benchfmt.ParseString(src, "chain", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	cr := m.MonteCarloCriticality(200, 7, 0)
	for i, p := range cr.Prob {
		if math.Abs(p-1) > 1e-12 {
			t.Errorf("chain arc %d criticality = %v, want 1", i, p)
		}
	}
}

func TestCriticalityDiamondFavorsSlowBranch(t *testing.T) {
	// Long branch (two NOTs) vs short branch (BUF): the long side
	// should be critical almost always.
	src := "INPUT(a)\nOUTPUT(o)\nf = BUF(a)\ns1 = NOT(a)\ns2 = NOT(s1)\no = AND(f, s2)\n"
	c, err := benchfmt.ParseString(src, "diamond", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	cr := m.MonteCarloCriticality(500, 7, 0)
	s2, _ := c.GateByName("s2")
	f, _ := c.GateByName("f")
	o, _ := c.GateByName("o")
	slowArc := o.InArcs[1] // s2 -> o
	fastArc := o.InArcs[0] // f -> o
	if cr.Prob[slowArc] < 0.95 {
		t.Errorf("slow-branch criticality = %v, want ~1", cr.Prob[slowArc])
	}
	if cr.Prob[fastArc] > 0.05 {
		t.Errorf("fast-branch criticality = %v, want ~0", cr.Prob[fastArc])
	}
	// Each sample walks exactly one path: probabilities through the
	// AND's pins sum to 1.
	if s := cr.Prob[slowArc] + cr.Prob[fastArc]; math.Abs(s-1) > 1e-9 {
		t.Errorf("pin criticalities sum to %v", s)
	}
	_, _ = s2, f
}

func TestCriticalityDeterministicAcrossWorkers(t *testing.T) {
	c, err := synth.GenerateNamed("mini", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	a := m.MonteCarloCriticality(300, 9, 1)
	b := m.MonteCarloCriticality(300, 9, 4)
	for i := range a.Prob {
		if math.Abs(a.Prob[i]-b.Prob[i]) > 1e-12 {
			t.Fatalf("criticality depends on workers at arc %d", i)
		}
	}
}

func TestCriticalityTop(t *testing.T) {
	c, err := synth.GenerateNamed("mini", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	cr := m.MonteCarloCriticality(400, 9, 0)
	top := cr.Top(5)
	if len(top) == 0 {
		t.Fatal("no critical arcs")
	}
	for i := 1; i < len(top); i++ {
		if cr.Prob[top[i]] > cr.Prob[top[i-1]]+1e-12 {
			t.Errorf("Top not sorted at %d", i)
		}
	}
	// Every sample contributes one full path; the most critical arc
	// appears in a decent share of them.
	if cr.Prob[top[0]] < 0.05 {
		t.Errorf("top criticality suspiciously low: %v", cr.Prob[top[0]])
	}
}

func TestCriticalityZeroSamples(t *testing.T) {
	// nSamples <= 0 is the documented zero-value early return: every
	// probability zero, no division by zero, no panic.
	src := "INPUT(a)\nOUTPUT(n2)\nn1 = NOT(a)\nn2 = NOT(n1)\n"
	c, err := benchfmt.ParseString(src, "chain", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	for _, n := range []int{0, -3} {
		cr := m.MonteCarloCriticality(n, 4, 0)
		if len(cr.Prob) != len(c.Arcs) {
			t.Fatalf("nSamples=%d: len(Prob) = %d, want %d", n, len(cr.Prob), len(c.Arcs))
		}
		for i, p := range cr.Prob {
			if p != 0 {
				t.Errorf("nSamples=%d: arc %d criticality = %v, want 0", n, i, p)
			}
		}
	}
}
