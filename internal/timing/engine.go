package timing

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/dist"
)

// STADist is engine-agnostic statistical STA output: one arrival-time
// distribution per primary output (indexed parallel to C.Outputs) and
// the circuit-delay distribution Δ(C) = max_i Ar(o_i). A Monte-Carlo
// engine fills it with *dist.Empirical, an analytic engine with
// dist.Normal; consumers read only the dist.Distribution surface.
type STADist struct {
	Arrivals     []dist.Distribution
	CircuitDelay dist.Distribution
}

// CriticalProb returns the critical probability P(Δ(C) > clk)
// (Definition D.6) under this engine's circuit-delay distribution.
func (s *STADist) CriticalProb(clk float64) float64 {
	return s.CircuitDelay.Exceed(clk)
}

// Engine is a pluggable statistical timing backend: every quantity the
// diagnosis pipeline consumes from the timing layer, behind one
// interface so Monte-Carlo simulation and closed-form SSTA (Clark
// moment matching) are interchangeable per call site.
//
// The (nSamples, seed, workers) triple parameterizes Monte-Carlo
// effort and is part of the interface so the MC engine stays
// bit-identical to the underlying kernels; analytic engines ignore all
// three (their answers are deterministic closed forms) but must accept
// them. Every method honors ctx cancellation and returns ctx.Err()
// with a zero result when cancelled.
type Engine interface {
	// Name identifies the backend ("mc", "analytic") for logs,
	// /stats and metric labels.
	Name() string
	// STA returns per-output arrival distributions and the circuit
	// delay distribution.
	STA(ctx context.Context, nSamples int, seed uint64, workers int) (*STADist, error)
	// Criticality returns per-arc critical-path membership
	// probabilities.
	Criticality(ctx context.Context, nSamples int, seed uint64, workers int) (*Criticality, error)
	// TimingLength returns the statistical timing length TL(p) of a
	// path given as a sequence of arcs.
	TimingLength(ctx context.Context, arcs []circuit.ArcID, nSamples int, seed uint64, workers int) (dist.Distribution, error)
	// SuggestClock returns the q-quantile of the circuit-delay
	// distribution — the standard cut-off period pick.
	SuggestClock(ctx context.Context, q float64, nSamples int, seed uint64, workers int) (float64, error)
}
