package timing

// Blocked Monte-Carlo kernels: each traversal samples and propagates a
// block of up to sc.block circuit instances at once in the Scratch's
// struct-of-arrays layout. Blocking amortizes the topological walk
// (gate/arc metadata is read once per block instead of once per
// sample) and turns the inner loops into short contiguous streams.
//
// Bit-exactness contract: every lane evaluates exactly the
// floating-point expressions of the scalar path — sampling funnels
// through Model.sampleArc with the per-sample rng.NewDerived draw
// order, propagation performs the same additions and strictly-greater
// comparisons per pin, and the backtrace replays the same tie-breaks —
// so blocked and scalar results are bit-identical for any block width.

// sampleBlock draws instances s0..s0+nb-1 of the deterministic
// sequence rooted at seed into sc: lane b's delays are generated into
// its contiguous row (matching the RNG's one-instance-at-a-time draw
// order), then transposed into the SoA delays buffer.
//
//ddd:hot
func (m *Model) sampleBlock(sc *Scratch, seed uint64, s0, nb int) {
	nArcs, B := sc.nArcs, sc.block
	for b := 0; b < nb; b++ {
		r := sc.stream.ResetDerived(seed, uint64(s0+b))
		row := sc.rows[b*nArcs : (b+1)*nArcs]
		g := r.NormFloat64()
		for i, nom := range m.Nominal {
			row[i] = m.sampleArc(nom, g, r.NormFloat64())
		}
	}
	// Transpose rows -> SoA: sequential writes, nb strided read streams.
	for i := 0; i < nArcs; i++ {
		dst := sc.delays[i*B : i*B+nb]
		for b := range dst {
			dst[b] = sc.rows[b*nArcs+i]
		}
	}
}

// propagateBlock runs static timing on the nb sampled lanes in one
// topological walk, filling sc.arr. Per gate and pin it performs, per
// lane, the identical add-then-strictly-greater-max of
// Model.ArrivalTimes.
//
//ddd:hot
func (m *Model) propagateBlock(sc *Scratch, nb int) {
	B := sc.block
	arr, delays := sc.arr, sc.delays
	for _, gid := range m.C.Order {
		g := &m.C.Gates[gid]
		out := arr[int(gid)*B : int(gid)*B+nb]
		if len(g.Fanin) == 0 {
			for b := range out {
				out[b] = 0
			}
			continue
		}
		for k, fi := range g.Fanin {
			src := arr[int(fi)*B : int(fi)*B+nb]
			d := delays[int(g.InArcs[k])*B : int(g.InArcs[k])*B+nb]
			if k == 0 {
				for b := range out {
					out[b] = src[b] + d[b]
				}
				continue
			}
			for b := range out {
				if t := src[b] + d[b]; t > out[b] {
					out[b] = t
				}
			}
		}
	}
}

// worstOutput returns, for lane b, the output gate realizing the
// circuit delay, with the scalar path's deterministic tie-break
// (first output wins on equality).
func (m *Model) worstOutput(sc *Scratch, b int) int {
	B := sc.block
	worst := int(m.C.Outputs[0])
	for _, o := range m.C.Outputs[1:] {
		if sc.arr[int(o)*B+b] > sc.arr[worst*B+b] {
			worst = int(o)
		}
	}
	return worst
}

// backtraceBlock walks the critical path of each lane backward from
// its latest output, incrementing cnt per traversed arc — the blocked
// form of the MonteCarloCriticality inner loop, with identical pin
// selection (strictly-greater, first pin wins ties).
//
//ddd:hot
func (m *Model) backtraceBlock(sc *Scratch, nb int, cnt []int64) {
	B := sc.block
	arr, delays := sc.arr, sc.delays
	for b := 0; b < nb; b++ {
		g := m.worstOutput(sc, b)
		for len(m.C.Gates[g].Fanin) > 0 {
			gate := &m.C.Gates[g]
			bestPin := 0
			bestT := arr[int(gate.Fanin[0])*B+b] + delays[int(gate.InArcs[0])*B+b]
			for k := 1; k < len(gate.Fanin); k++ {
				if t := arr[int(gate.Fanin[k])*B+b] + delays[int(gate.InArcs[k])*B+b]; t > bestT {
					bestT = t
					bestPin = k
				}
			}
			cnt[gate.InArcs[bestPin]]++
			g = int(gate.Fanin[bestPin])
		}
	}
}
