package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/circuit"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/timing"
)

func synthModel(t testing.TB, profile string, seed uint64) *timing.Model {
	t.Helper()
	c, err := synth.GenerateNamed(profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	return timing.NewModel(c, timing.DefaultParams())
}

func benchModel(t testing.TB, src, name string) *timing.Model {
	t.Helper()
	c, err := benchfmt.ParseString(src, name, true)
	if err != nil {
		t.Fatal(err)
	}
	return timing.NewModel(c, timing.DefaultParams())
}

func TestRegistry(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, []string{"analytic", "mc"}) {
		t.Fatalf("Names() = %v, want [analytic mc]", got)
	}
	for _, name := range []string{"", "mc", "analytic"} {
		if !Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if Known("bogus") {
		t.Error("Known(bogus) = true")
	}
	m := synthModel(t, "mini", 1)
	eng, err := New("", m)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != DefaultName {
		t.Errorf("New(\"\").Name() = %q, want %q", eng.Name(), DefaultName)
	}
	if _, err := New("bogus", m); err == nil {
		t.Fatal("New(bogus) succeeded")
	}
}

// TestMCBitIdentity pins the MC engine to the underlying kernels: the
// adapter must forward verbatim, so every statistic is bit-identical
// to calling the Model methods directly.
func TestMCBitIdentity(t *testing.T) {
	m := synthModel(t, "small", 7)
	eng := NewMC(m)
	ctx := context.Background()
	const n, seed = 2000, 42

	sta, err := eng.STA(ctx, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.MonteCarloSTACtx(ctx, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sta.CircuitDelay.Mean() != ref.CircuitDelay.Mean() || sta.CircuitDelay.Std() != ref.CircuitDelay.Std() {
		t.Error("STA circuit delay differs from MonteCarloSTACtx")
	}
	for i := range sta.Arrivals {
		if sta.Arrivals[i].Quantile(0.9) != ref.Arrivals[i].Quantile(0.9) {
			t.Fatalf("arrival %d differs", i)
		}
	}

	cr, err := eng.Criticality(ctx, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	crRef, err := m.MonteCarloCriticalityCtx(ctx, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Prob, crRef.Prob) {
		t.Error("Criticality differs from MonteCarloCriticalityCtx")
	}

	arcs := longestStructuralPath(m)
	tl, err := eng.TimingLength(ctx, arcs, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	tlRef, err := m.TimingLengthCtx(ctx, arcs, n, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Quantile(0.99) != tlRef.Quantile(0.99) {
		t.Error("TimingLength differs from TimingLengthCtx")
	}

	clk, err := eng.SuggestClock(ctx, 0.99, n, rng.Derive(seed, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	clkRef, err := m.SuggestClockCtx(ctx, 0.99, n, rng.Derive(seed, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if clk != clkRef {
		t.Errorf("SuggestClock %v != SuggestClockCtx %v", clk, clkRef)
	}
}

// longestStructuralPath walks back from the first output along each
// gate's nominally latest fan-in, collecting the arc sequence — a
// convenient real path for TimingLength tests.
func longestStructuralPath(m *timing.Model) []circuit.ArcID {
	arr := m.ArrivalTimes(m.NominalInstance())
	var arcs []circuit.ArcID
	g := m.C.Outputs[0]
	for len(m.C.Gates[g].Fanin) > 0 {
		best := 0
		for k, fi := range m.C.Gates[g].Fanin {
			if arr[fi] > arr[m.C.Gates[g].Fanin[best]] {
				best = k
			}
			_ = fi
		}
		arcs = append(arcs, m.C.Gates[g].InArcs[best])
		g = m.C.Gates[g].Fanin[best]
	}
	// Reverse into launch-to-capture order (TimingLength is
	// order-independent, but paths read better forward).
	for i, j := 0, len(arcs)-1; i < j; i, j = i+1, j-1 {
		arcs[i], arcs[j] = arcs[j], arcs[i]
	}
	return arcs
}
