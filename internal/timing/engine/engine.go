// Package engine provides the pluggable statistical timing backends
// behind the timing.Engine interface: "mc", a thin wrapper over the
// blocked Monte-Carlo kernels (bit-identical to calling them
// directly), and "analytic", a closed-form SSTA engine that grows the
// ClarkSTA seed into full moment-matched propagation with correlation
// tracking (DESIGN.md §14).
//
// Backends self-register by name at init time; call sites select one
// with New(name, model), where the empty name means DefaultName. The
// registry keeps engine construction string-driven so binaries expose
// a uniform `-engine {mc,analytic}` flag and configs serialize the
// choice as data.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/timing"
)

// DefaultName is the engine selected by an empty name: Monte Carlo,
// the bit-exact oracle every result in the repo is defined against.
const DefaultName = "mc"

var (
	regMu    sync.RWMutex
	registry = map[string]func(*timing.Model) timing.Engine{}
)

// Register installs a backend factory under name. Registering a
// duplicate name panics: two backends answering to one name would make
// `-engine` selection ambiguous.
func Register(name string, factory func(*timing.Model) timing.Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New constructs the named engine over m. The empty name selects
// DefaultName; an unknown name is an error listing the known engines.
func New(name string, m *timing.Model) (timing.Engine, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (have %v)", name, Names())
	}
	return factory(m), nil
}

// Known reports whether name selects a registered engine ("" counts:
// it selects the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
