package engine

import (
	"context"
	"math"

	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/logicsim"
	"repro/internal/par"
	"repro/internal/tsim"
)

// SignatureProbs holds analytic critical-probability signatures for a
// dictionary build: the defect-free matrix M and one matrix per
// suspect E, flattened row-major with the pattern axis innermost
// (matching the core accumulator layout).
type SignatureProbs struct {
	NOut, NPat, NSus int
	M                []float64 // M[oi*NPat + j]
	E                []float64 // E[(i*NOut+oi)*NPat + j]
}

// Signatures computes the analytic counterpart of the Monte-Carlo
// dictionary build: per (output, pattern) the probability that the
// output captures a wrong value at clk, defect-free (M) and under each
// suspect defect (E).
//
// Where the MC build simulates every (sample, pattern, suspect)
// triple, the analytic build simulates only the NOMINAL die — one
// waveform-recording timed run per pattern, plus one per (pattern,
// suspect) with the defect at its mean size — and turns each recorded
// output waveform into a capture-failure probability in closed form.
// An output captures wrongly exactly when clk falls in a time interval
// where its waveform still differs from the settled value; walking the
// nominal transitions t_1 < … < t_k backward, those intervals
// alternate, so
//
//	P(fail) = Σ_{i=1..k} (−1)^{k−i} · P(t_i > clk),
//
// with each transition time modeled as a Normal centered on its
// nominal time and dilated by process variation (see dilationVar; a
// transition moved by the defect also carries the size distribution's
// variance). Collapsing the sample axis this way is what turns
// seconds of dictionary build into milliseconds.
//
// Approximations (measured end-to-end by eval.CompareEngines):
// transition times shift under variation but the transition COUNT is
// frozen at the nominal waveform's (variation-created or -killed
// glitches are unseen), co-moving transitions are treated as perfectly
// correlated (the alternating sum telescopes) yet dilated
// independently per transition, and a suspect whose driver never
// transitions under a pattern keeps the baseline row — the same skip
// the MC build applies.
//
// Patterns are processed in parallel (workers as in par.Workers); each
// pattern writes a disjoint column of every matrix, so the result is
// deterministic and independent of scheduling.
func (e *Analytic) Signatures(ctx context.Context, patterns []logicsim.PatternPair, suspects []circuit.ArcID, clk float64, size dist.Dist, workers int) (*SignatureProbs, error) {
	c := e.m.C
	nOut, nPat, nSus := len(c.Outputs), len(patterns), len(suspects)
	sp := &SignatureProbs{
		NOut: nOut, NPat: nPat, NSus: nSus,
		M: make([]float64, nOut*nPat),
		E: make([]float64, nSus*nOut*nPat),
	}
	defMu := size.Mean()
	defVar := size.Variance()

	// Per-suspect fan-out cones, shared read-only across workers: the
	// defect on arc a can only move waveforms at a.To and downstream.
	cones := make([]circuit.GateSet, nSus)
	for i, a := range suspects {
		cones[i] = c.ArcFanoutGates(a)
	}

	type sigWorker struct {
		eng    *tsim.Engine // baseline runs (owns the base waveforms)
		engDef *tsim.Engine // defective runs
		// baseT[oi] indexes output oi's baseline transition times:
		// defective-run transitions not found here were moved by the
		// defect (event times are sums of the same delays, so unmoved
		// transitions match bitwise).
		baseT []map[float64]bool
	}
	ws := make([]*sigWorker, par.Workers(workers, nPat))
	if _, err := par.ForWorkerCtx(ctx, nPat, workers, func(w, j int) {
		wk := ws[w]
		if wk == nil {
			wk = &sigWorker{
				eng:    tsim.NewEngine(c),
				engDef: tsim.NewEngine(c),
				baseT:  make([]map[float64]bool, nOut),
			}
			for oi := range wk.baseT {
				wk.baseT[oi] = make(map[float64]bool)
			}
			ws[w] = wk
		}
		// One waveform-recording nominal run per pattern. The Result
		// aliases wk.eng scratch; the defective runs below use the
		// second engine, so base stays valid through this pattern.
		opts := tsim.Quiescent()
		opts.RecordWaveforms = true
		base := wk.eng.Run(e.m.Nominal, patterns[j], opts)
		for oi, o := range c.Outputs {
			m := wk.baseT[oi]
			clear(m)
			for _, st := range base.Waveforms[o] {
				m[st.T] = true
			}
			sp.M[oi*nPat+j] = e.captureFailProb(base.Waveforms[o], clk, nil, 0)
		}
		for i, arc := range suspects {
			if !base.Transitioned[c.Arcs[arc].From] {
				// The defect arc never sees a transition under this
				// pattern: E equals the baseline (the MC build's skip).
				for oi := 0; oi < nOut; oi++ {
					sp.E[(i*nOut+oi)*nPat+j] = sp.M[oi*nPat+j]
				}
				continue
			}
			dOpts := tsim.Quiescent()
			dOpts.RecordWaveforms = true
			dOpts.DefectArc = arc
			dOpts.DefectExtra = defMu
			res := wk.engDef.Run(e.m.Nominal, patterns[j], dOpts)
			for oi, o := range c.Outputs {
				v := sp.M[oi*nPat+j]
				if cones[i].Has(o) {
					v = e.captureFailProb(res.Waveforms[o], clk, wk.baseT[oi], defVar)
				}
				sp.E[(i*nOut+oi)*nPat+j] = v
			}
		}
	}); err != nil {
		return nil, err
	}
	return sp, nil
}

// captureFailProb turns one recorded output waveform into the
// probability that a capture at clk disagrees with the settled value.
// The waveform's value differs from the settled one exactly on the
// intervals (t_{k-1}, t_k), (t_{k-3}, t_{k-2}), … counted from the
// last transition (plus, when the settled values differ, the initial
// segment), so under co-moving transitions the probability telescopes
// into an alternating sum of per-transition exceedance probabilities.
// Each transition time is dilated by dilationVar; times absent from
// baseT (non-nil only for defective waveforms) were moved by the
// defect and additionally carry defVar. The sum is clamped to [0, 1]:
// transitions are dilated marginally, so near-coincident pairs can
// otherwise overshoot by their overlap.
func (e *Analytic) captureFailProb(steps []tsim.Step, clk float64, baseT map[float64]bool, defVar float64) float64 {
	p := 0.0
	sign := 1.0
	for i := len(steps) - 1; i >= 0; i-- {
		t := steps[i].T
		v := e.dilationVar(t)
		if baseT != nil && !baseT[t] {
			v += defVar
		}
		p += sign * dist.Normal{Mu: t, Sigma: math.Sqrt(v)}.Exceed(clk)
		sign = -sign
	}
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// dilationVar models how far process variation moves a transition that
// nominally happens at time t: the causing path has total nominal
// length t, whose delay scales with the shared global factor
// (σ_g·t contributes coherently) while per-arc local variation adds
// incoherently — for a path of arcs averaging the circuit's mean cell
// delay d̄, Σ nom_i² ≈ t·d̄, giving variance (σ_g·t)² + σ_l²·d̄·t. The
// path's identity is taken from the nominal waveform, not re-derived
// per process corner (the frozen-topology approximation above).
func (e *Analytic) dilationVar(t float64) float64 {
	g := e.m.P.SigmaGlobal * t
	return g*g + e.m.P.SigmaLocal*e.m.P.SigmaLocal*e.meanCell*t
}
