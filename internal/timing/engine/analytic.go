package engine

import (
	"context"
	"math"

	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/timing"
)

func init() {
	Register("analytic", func(m *timing.Model) timing.Engine { return NewAnalytic(m) })
}

// Analytic is the closed-form SSTA engine: arrival times propagate
// through the circuit as first-order canonical normals under Clark's
// moment-matching max operator, with the correlation between
// reconvergent paths tracked through each arrival's sensitivity to the
// model's shared global factor. It answers in microseconds to
// milliseconds where the Monte-Carlo engine needs seconds, at the cost
// of documented approximations (DESIGN.md §14):
//
//   - Clark's max is exact in its first two moments but renormalizes
//     the result to a Gaussian, so skew introduced by near-ties is
//     dropped before the next level consumes it.
//   - Local (per-arc) variation accumulated along two reconvergent
//     paths is treated as independent at the merge point; only the
//     global factor's contribution to their covariance is kept. The
//     property tests measure the residual error on reconvergent cones.
//   - The sampler's max(ε, ·) truncation of the delay scale is
//     neglected: at the library's σ ≈ 11 % the truncation point lies
//     beyond 8σ.
//
// The (nSamples, seed, workers) engine arguments are ignored — every
// answer is a deterministic closed form.
type Analytic struct {
	m *timing.Model
	// meanCell caches m.MeanCellDelay() for the waveform dilation model
	// (see dilationVar), which is evaluated per recorded transition.
	meanCell float64
}

// NewAnalytic returns the analytic engine over m.
func NewAnalytic(m *timing.Model) *Analytic {
	return &Analytic{m: m, meanCell: m.MeanCellDelay()}
}

// Name returns "analytic".
func (e *Analytic) Name() string { return "analytic" }

// cnorm is an arrival time in first-order canonical form,
//
//	A = mu + g·G + sqrt(lv)·Z_A,
//
// where G ~ N(0,1) is the model's shared global factor and Z_A ~
// N(0,1) is an independent aggregate of the local variation collected
// along A's dominant paths. Keeping the global sensitivity g separate
// from the pooled local variance lv is what lets the max operator
// compute the covariance of two arrivals — paths through common
// process conditions correlate via g·g' — instead of assuming a single
// circuit-wide correlation like the ClarkSTA seed did.
type cnorm struct {
	mu float64 // mean
	g  float64 // sensitivity to the global factor
	lv float64 // pooled local (independent) variance
}

// variance returns the total variance g² + lv.
func (a cnorm) variance() float64 { return a.g*a.g + a.lv }

// normal collapses the canonical form to its marginal distribution.
func (a cnorm) normal() dist.Normal {
	return dist.Normal{Mu: a.mu, Sigma: math.Sqrt(a.variance())}
}

// arcC returns the canonical delay of an arc with the given nominal:
// d = nom·(1 + σ_g·G + σ_l·L) has mean nom, global sensitivity nom·σ_g
// and local variance (nom·σ_l)².
func (e *Analytic) arcC(nom float64) cnorm {
	sg := nom * e.m.P.SigmaGlobal
	sl := nom * e.m.P.SigmaLocal
	return cnorm{mu: nom, g: sg, lv: sl * sl}
}

// addC sums an arrival and an arc delay. The sum is exact: means and
// global sensitivities add, and the arc's fresh local factor is
// independent of everything already pooled in a.
func addC(a, b cnorm) cnorm {
	return cnorm{mu: a.mu + b.mu, g: a.g + b.g, lv: a.lv + b.lv}
}

// maxC returns the canonical form of max(a, b) and the tie probability
// P(a >= b), via Clark's operator with the correlation implied by the
// two global sensitivities (local parts are treated as independent —
// the documented reconvergence approximation). The result's global
// sensitivity is the tie-probability-weighted blend of the inputs'
// (the standard first-order reconstruction); its local variance is
// whatever of Clark's exact second moment the blend does not explain,
// clamped at zero when the blend alone overshoots.
func maxC(a, b cnorm) (cnorm, float64) {
	an, bn := a.normal(), b.normal()
	rho := 0.0
	if d := an.Sigma * bn.Sigma; d > 0 {
		rho = a.g * b.g / d
	}
	mx, p := dist.MaxNormal(an, bn, rho)
	g := p*a.g + (1-p)*b.g
	lv := mx.Sigma*mx.Sigma - g*g
	if lv < 0 {
		g = mx.Sigma
		lv = 0
	}
	return cnorm{mu: mx.Mu, g: g, lv: lv}, p
}

// propagate fills arr (indexed by GateID, len(C.Gates) long) with
// canonical arrival forms in topological order: inputs launch at zero,
// every other gate is the Clark max over its fan-in of arrival plus
// arc delay — the analytic mirror of propagateBlock.
//
// wins, when non-nil, records per gate the probability that each
// fan-in pin realizes the gate's arrival: folding candidates
// left-to-right, pin k enters with the current tie probability and
// every earlier pin's share is scaled down by it — the analytic mirror
// of the MC backtrace's first-pin-wins argmax.
func (e *Analytic) propagate(arr []cnorm, wins [][]float64) {
	c := e.m.C
	for _, gid := range c.Order {
		g := &c.Gates[gid]
		if len(g.Fanin) == 0 {
			arr[gid] = cnorm{}
			continue
		}
		var acc cnorm
		var w []float64
		if wins != nil {
			if w = wins[gid]; len(w) != len(g.Fanin) {
				w = make([]float64, len(g.Fanin))
				wins[gid] = w
			}
		}
		for k, fi := range g.Fanin {
			cand := addC(arr[fi], e.arcC(e.m.Nominal[g.InArcs[k]]))
			if k == 0 {
				acc = cand
				if w != nil {
					w[0] = 1
				}
				continue
			}
			merged, p := maxC(acc, cand)
			acc = merged
			if w != nil {
				for j := 0; j < k; j++ {
					w[j] *= p
				}
				w[k] = 1 - p
			}
		}
		arr[gid] = acc
	}
}

// STA propagates canonical arrivals through the whole circuit and
// folds the outputs into the circuit-delay distribution. The engine
// arguments are ignored (closed form); ctx is only checked on entry —
// a full pass is a few microseconds per thousand gates.
func (e *Analytic) STA(ctx context.Context, nSamples int, seed uint64, workers int) (*timing.STADist, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := e.m.C
	arr := make([]cnorm, len(c.Gates))
	e.propagate(arr, nil)
	out := &timing.STADist{Arrivals: make([]dist.Distribution, len(c.Outputs))}
	var acc cnorm
	for i, o := range c.Outputs {
		out.Arrivals[i] = arr[o].normal()
		if i == 0 {
			acc = arr[o]
			continue
		}
		acc, _ = maxC(acc, arr[o])
	}
	out.CircuitDelay = acc.normal()
	return out, nil
}

// Criticality computes per-arc critical-path probabilities in two
// closed-form passes: a forward propagation recording each pin's
// probability of realizing its gate's arrival (Clark tie
// probabilities), then a backward pass over the reversed topological
// order distributing each gate's criticality mass to its pins — the
// analytic mirror of backtraceBlock's counted walks. Pin win events at
// different gates are treated as independent when the chain
// probabilities multiply (the same first-order approximation as the
// merges themselves).
func (e *Analytic) Criticality(ctx context.Context, nSamples int, seed uint64, workers int) (*timing.Criticality, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := e.m.C
	arr := make([]cnorm, len(c.Gates))
	wins := make([][]float64, len(c.Gates))
	e.propagate(arr, wins)

	// Fold the outputs exactly like worstOutput: the latest output
	// seeds the backtrace, so each output's criticality mass is its
	// probability of being the latest.
	credit := make([]float64, len(c.Gates))
	var acc cnorm
	outW := make([]float64, len(c.Outputs))
	for i, o := range c.Outputs {
		if i == 0 {
			acc = arr[o]
			outW[0] = 1
			continue
		}
		merged, p := maxC(acc, arr[o])
		acc = merged
		for j := 0; j < i; j++ {
			outW[j] *= p
		}
		outW[i] = 1 - p
	}
	for i, o := range c.Outputs {
		credit[o] += outW[i]
	}

	cr := &timing.Criticality{Prob: make([]float64, len(c.Arcs))}
	for idx := len(c.Order) - 1; idx >= 0; idx-- {
		gid := c.Order[idx]
		w := credit[gid]
		if w <= 0 {
			continue
		}
		g := &c.Gates[gid]
		if len(g.Fanin) == 0 {
			continue
		}
		for k, fi := range g.Fanin {
			share := w * wins[gid][k]
			cr.Prob[g.InArcs[k]] += share
			credit[fi] += share
		}
	}
	return cr, nil
}

// TimingLength returns the exact closed-form timing length of a path:
// arc delays along a path share the global factor (means and global
// sensitivities add linearly) while their local factors are
// independent (variances add). No max is involved, so unlike STA this
// is not an approximation of the model — it is the model's marginal,
// and the property tests hold it to Monte-Carlo at statistical error.
func (e *Analytic) TimingLength(ctx context.Context, arcs []circuit.ArcID, nSamples int, seed uint64, workers int) (dist.Distribution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nomSum, sq := 0.0, 0.0
	for _, a := range arcs {
		nom := e.m.Nominal[a]
		nomSum += nom
		sq += nom * nom
	}
	g := e.m.P.SigmaGlobal * nomSum
	lv := e.m.P.SigmaLocal * e.m.P.SigmaLocal * sq
	return dist.Normal{Mu: nomSum, Sigma: math.Sqrt(g*g + lv)}, nil
}

// SuggestClock returns the q-quantile of the analytic circuit-delay
// normal.
func (e *Analytic) SuggestClock(ctx context.Context, q float64, nSamples int, seed uint64, workers int) (float64, error) {
	sta, err := e.STA(ctx, nSamples, seed, workers)
	if err != nil {
		return 0, err
	}
	return sta.CircuitDelay.Quantile(q), nil
}
