package engine

import (
	"context"
	"math"
	"testing"
)

// Property tests for the analytic engine: on hand-built DAG shapes
// that isolate each approximation — a pure chain (no max anywhere, the
// canonical form is exact), a diamond (one reconvergent max with
// unequal depths), and a doubly reconvergent cone (stacked correlated
// maxes) — the closed forms must track a high-sample Monte-Carlo
// reference within documented tolerances. MC sampling error at 200k
// samples is ~0.2 % of σ, far below every bound checked here.

const chainBench = `
INPUT(a)
OUTPUT(z)
n1 = NOT(a)
n2 = NOT(n1)
n3 = NOT(n2)
n4 = NOT(n3)
z = NOT(n4)
`

const diamondBench = `
INPUT(a)
OUTPUT(z)
b = NOT(a)
c = NOT(a)
d = NOT(b)
z = AND(d, c)
`

const coneBench = `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
x = AND(a, b)
y = OR(b, c)
u = NAND(x, y)
v = NOR(x, y)
z = AND(u, v)
`

const mcRefSamples = 200_000

func TestAnalyticSTAProperties(t *testing.T) {
	cases := []struct {
		name, src string
		// Tolerances on the circuit-delay moments, relative. The chain
		// has no max, so only MC noise separates the two engines; the
		// reconvergent shapes inherit the documented Clark and
		// local-independence errors.
		meanTol, sigmaTol float64
	}{
		{"chain", chainBench, 0.005, 0.02},
		{"diamond", diamondBench, 0.01, 0.15},
		{"cone", coneBench, 0.02, 0.25},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := benchModel(t, tc.src, tc.name)
			an, err := NewAnalytic(m).STA(ctx, 0, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := NewMC(m).STA(ctx, mcRefSamples, 99, 0)
			if err != nil {
				t.Fatal(err)
			}
			meanMC, meanAN := mc.CircuitDelay.Mean(), an.CircuitDelay.Mean()
			sigMC, sigAN := mc.CircuitDelay.Std(), an.CircuitDelay.Std()
			if e := math.Abs(meanAN-meanMC) / meanMC; e > tc.meanTol {
				t.Errorf("delay mean rel err %.4f > %.4f (mc %.5f an %.5f)", e, tc.meanTol, meanMC, meanAN)
			}
			if e := math.Abs(sigAN-sigMC) / sigMC; e > tc.sigmaTol {
				t.Errorf("delay sigma rel err %.4f > %.4f (mc %.5f an %.5f)", e, tc.sigmaTol, sigMC, sigAN)
			}
			// Critical probability at the MC q90: the exceedance curves
			// must agree where clk selection reads them.
			clk := mc.CircuitDelay.Quantile(0.9)
			if d := math.Abs(an.CriticalProb(clk) - mc.CriticalProb(clk)); d > 0.05 {
				t.Errorf("critical prob at q90 differs by %.4f (mc %.4f an %.4f)",
					d, mc.CriticalProb(clk), an.CriticalProb(clk))
			}
		})
	}
}

func TestAnalyticCriticalityProperties(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name, src string
		tol       float64
	}{
		{"chain", chainBench, 1e-12},
		{"diamond", diamondBench, 0.05},
		{"cone", coneBench, 0.08},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := benchModel(t, tc.src, tc.name)
			an, err := NewAnalytic(m).Criticality(ctx, 0, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := NewMC(m).Criticality(ctx, mcRefSamples, 7, 0)
			if err != nil {
				t.Fatal(err)
			}
			for a := range mc.Prob {
				if d := math.Abs(an.Prob[a] - mc.Prob[a]); d > tc.tol {
					t.Errorf("arc %d criticality differs by %.4f (mc %.4f an %.4f)",
						a, d, mc.Prob[a], an.Prob[a])
				}
			}
		})
	}
}

// TestAnalyticTimingLengthExact: a path's timing length involves no
// max, so the analytic Normal is the model's exact marginal — mean and
// σ must match MC at its sampling error.
func TestAnalyticTimingLengthExact(t *testing.T) {
	ctx := context.Background()
	m := synthModel(t, "small", 7)
	arcs := longestStructuralPath(m)
	an, err := NewAnalytic(m).TimingLength(ctx, arcs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMC(m).TimingLength(ctx, arcs, mcRefSamples, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(an.Mean()-mc.Mean()) / mc.Mean(); e > 0.002 {
		t.Errorf("timing length mean rel err %.5f (mc %.5f an %.5f)", e, mc.Mean(), an.Mean())
	}
	if e := math.Abs(an.Std()-mc.Std()) / mc.Std(); e > 0.02 {
		t.Errorf("timing length sigma rel err %.5f (mc %.5f an %.5f)", e, mc.Std(), an.Std())
	}
}

// TestAnalyticHygiene: closed forms must stay finite on every shape,
// including degenerate single-gate circuits.
func TestAnalyticHygiene(t *testing.T) {
	ctx := context.Background()
	for _, src := range []string{
		chainBench, diamondBench, coneBench,
		"INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n",
	} {
		m := benchModel(t, src, "hygiene")
		eng := NewAnalytic(m)
		sta, err := eng.STA(ctx, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(sta.CircuitDelay.Mean()) || math.IsInf(sta.CircuitDelay.Mean(), 0) ||
			math.IsNaN(sta.CircuitDelay.Std()) || sta.CircuitDelay.Std() < 0 {
			t.Fatalf("non-finite circuit delay %v", sta.CircuitDelay)
		}
		cr, err := eng.Criticality(ctx, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for a, p := range cr.Prob {
			if math.IsNaN(p) || p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("criticality[%d] = %v out of [0,1]", a, p)
			}
		}
		clk, err := eng.SuggestClock(ctx, 0.99, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(clk) || math.IsInf(clk, 0) {
			t.Fatalf("non-finite clk %v", clk)
		}
	}
}
