package engine

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/timing"
)

func init() {
	Register("mc", func(m *timing.Model) timing.Engine { return NewMC(m) })
}

// MC is the Monte-Carlo engine: a thin adapter over the blocked
// sampling kernels (MonteCarloSTACtx, MonteCarloCriticalityCtx,
// TimingLengthCtx, SuggestClockCtx). Every method forwards its
// arguments verbatim, so selecting this engine produces bit-identical
// numbers to calling the Model methods directly — the golden
// dictionaries, Table-I rows and quantile tests all hold unchanged
// under `-engine mc`.
type MC struct {
	m *timing.Model
}

// NewMC returns the Monte-Carlo engine over m.
func NewMC(m *timing.Model) *MC { return &MC{m: m} }

// Name returns "mc".
func (e *MC) Name() string { return "mc" }

// STA runs Monte-Carlo statistical STA and wraps the empirical
// per-output distributions in the engine-agnostic surface.
func (e *MC) STA(ctx context.Context, nSamples int, seed uint64, workers int) (*timing.STADist, error) {
	res, err := e.m.MonteCarloSTACtx(ctx, nSamples, seed, workers)
	if err != nil {
		return nil, err
	}
	out := &timing.STADist{
		Arrivals:     make([]dist.Distribution, len(res.Arrivals)),
		CircuitDelay: res.CircuitDelay,
	}
	for i, a := range res.Arrivals {
		out.Arrivals[i] = a
	}
	return out, nil
}

// Criticality estimates per-arc critical-path probabilities by sampled
// backtraces.
func (e *MC) Criticality(ctx context.Context, nSamples int, seed uint64, workers int) (*timing.Criticality, error) {
	return e.m.MonteCarloCriticalityCtx(ctx, nSamples, seed, workers)
}

// TimingLength estimates the statistical timing length of a path by
// Monte Carlo.
func (e *MC) TimingLength(ctx context.Context, arcs []circuit.ArcID, nSamples int, seed uint64, workers int) (dist.Distribution, error) {
	return e.m.TimingLengthCtx(ctx, arcs, nSamples, seed, workers)
}

// SuggestClock returns the q-quantile of the sampled circuit-delay
// distribution.
func (e *MC) SuggestClock(ctx context.Context, q float64, nSamples int, seed uint64, workers int) (float64, error) {
	return e.m.SuggestClockCtx(ctx, q, nSamples, seed, workers)
}
