package timing

import (
	"math"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/synth"
)

func TestSlacksChain(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(n2)\nn1 = NOT(a)\nn2 = NOT(n1)\n"
	c, err := benchfmt.ParseString(src, "chain", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	arr := m.ArrivalTimes(in)
	clk := arr[c.Outputs[0]] + 0.5 // half a unit of guardband
	slacks := m.Slacks(in, clk)
	// Every arc of a pure chain carries the same slack: the guardband.
	for i, s := range slacks {
		if math.Abs(s-0.5) > 1e-9 {
			t.Errorf("arc %d slack = %v, want 0.5", i, s)
		}
	}
}

func TestSlacksDiamond(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(o)\nf = BUF(a)\ns1 = NOT(a)\ns2 = NOT(s1)\no = AND(f, s2)\n"
	c, err := benchfmt.ParseString(src, "diamond", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	arr := m.ArrivalTimes(in)
	clk := arr[c.Outputs[0]]
	slacks := m.Slacks(in, clk)
	o, _ := c.GateByName("o")
	slow := o.InArcs[1] // via the two-NOT branch
	fast := o.InArcs[0] // via the buffer
	if math.Abs(slacks[slow]) > 1e-9 {
		t.Errorf("critical arc slack = %v, want 0", slacks[slow])
	}
	if slacks[fast] <= 0 {
		t.Errorf("fast-branch slack = %v, want positive", slacks[fast])
	}
	// Slack consistency: adding exactly the slack as a defect makes the
	// arc critical (arrival hits clk).
	d := in.WithDefect(fast, slacks[fast])
	arr2 := m.ArrivalTimes(d)
	if math.Abs(arr2[c.Outputs[0]]-clk) > 1e-9 {
		t.Errorf("slack-sized defect should land exactly on clk: %v vs %v", arr2[c.Outputs[0]], clk)
	}
}

func TestSlacksUnobservableArc(t *testing.T) {
	// A dangling gate's arcs get the sentinel slack.
	srcBench := "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\ndead = OR(a, b)\n"
	c, err := benchfmt.ParseString(srcBench, "dead", false)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	clk := 10.0
	slacks := m.Slacks(in, clk)
	dead, _ := c.GateByName("dead")
	for _, a := range dead.InArcs {
		if slacks[a] != clk {
			t.Errorf("unobservable arc slack = %v, want sentinel %v", slacks[a], clk)
		}
	}
}

func TestMinSlackArcs(t *testing.T) {
	slacks := []float64{3, 1, 2, 0.5, 5}
	top := MinSlackArcs(slacks, 3)
	if len(top) != 3 || top[0] != 3 || top[1] != 1 || top[2] != 2 {
		t.Errorf("MinSlackArcs = %v", top)
	}
	if got := MinSlackArcs(slacks, 99); len(got) != len(slacks) {
		t.Errorf("overlong k not clamped")
	}
}

func TestSlackMatchesCriticality(t *testing.T) {
	// The arc with minimum slack on the nominal instance should be
	// among the most critical arcs statistically.
	c, err := synth.GenerateNamed("mini", 4)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c, DefaultParams())
	in := m.NominalInstance()
	arr := m.ArrivalTimes(in)
	worst := 0.0
	for _, o := range c.Outputs {
		if arr[o] > worst {
			worst = arr[o]
		}
	}
	slacks := m.Slacks(in, worst)
	minArc := MinSlackArcs(slacks, 1)[0]
	cr := m.MonteCarloCriticality(400, 7, 0)
	if cr.Prob[minArc] < 0.2 {
		t.Errorf("min-slack arc %d has low statistical criticality %v", minArc, cr.Prob[minArc])
	}
}
