package timing

import (
	"context"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist"
	"repro/internal/par"
	"repro/internal/rng"
)

// ArrivalTimes computes topological (latest-transition, i.e. static)
// arrival times for every gate of a fixed-delay instance: inputs launch
// at t = 0 and each gate's arrival is the max over its in-arcs of the
// driver arrival plus the arc delay. The returned slice is indexed by
// GateID.
func (m *Model) ArrivalTimes(in *Instance) []float64 {
	arrivalEvals.Inc()
	arr := make([]float64, len(m.C.Gates))
	for _, gid := range m.C.Order {
		g := &m.C.Gates[gid]
		if len(g.Fanin) == 0 {
			arr[gid] = 0
			continue
		}
		best := 0.0
		for k, fi := range g.Fanin {
			if t := arr[fi] + in.Delays[g.InArcs[k]]; k == 0 || t > best {
				best = t
			}
		}
		arr[gid] = best
	}
	return arr
}

// STAResult holds Monte-Carlo statistical STA output: the empirical
// arrival-time distribution Ar(o_i) per primary output and the circuit
// delay Δ(C) = max_i Ar(o_i) (Section D-1 of the paper).
type STAResult struct {
	Arrivals     []*dist.Empirical // per output, indexed parallel to C.Outputs
	CircuitDelay *dist.Empirical
}

// CriticalProb returns the critical probability P(Δ(C) > clk)
// (Definition D.6).
func (r *STAResult) CriticalProb(clk float64) float64 {
	return r.CircuitDelay.Exceed(clk)
}

// MonteCarloSTA estimates the output arrival distributions by sampling
// nSamples circuit instances (deterministically derived from seed) and
// running static timing on each, fanning out across workers goroutines
// (0 = GOMAXPROCS, see par.Workers).
func (m *Model) MonteCarloSTA(nSamples int, seed uint64, workers int) *STAResult {
	res, _ := m.MonteCarloSTACtx(context.Background(), nSamples, seed, workers)
	return res
}

// MonteCarloSTACtx is MonteCarloSTA with cooperative cancellation:
// workers stop claiming sample blocks once ctx is done (the fan-out
// checks between blocks, so a cancel lands within one block of static
// timing per worker). A cancelled run returns (nil, ctx.Err()) — the
// partially filled per-output arrays would bias every quantile toward
// whichever samples completed, so no partial distribution is built.
func (m *Model) MonteCarloSTACtx(ctx context.Context, nSamples int, seed uint64, workers int) (*STAResult, error) {
	return m.monteCarloSTABlocked(ctx, nSamples, seed, workers, DefaultBlock)
}

// monteCarloSTABlocked is the blocked implementation behind
// MonteCarloSTACtx, with an explicit block width so equivalence tests
// and the fuzz target can vary it. Results are bit-identical for every
// block >= 1 (see the kernel contract in kernel.go).
func (m *Model) monteCarloSTABlocked(ctx context.Context, nSamples int, seed uint64, workers, block int) (*STAResult, error) {
	start := time.Now()
	defer func() {
		staSeconds.Add(time.Since(start).Seconds())
	}()
	if nSamples > 0 {
		staSamples.Add(float64(nSamples))
	}
	nOut := len(m.C.Outputs)
	perOut := make([][]float64, nOut)
	for i := range perOut {
		perOut[i] = make([]float64, nSamples)
	}
	delays := make([]float64, nSamples)
	if block <= 0 {
		block = DefaultBlock
	}
	nBlocks := (nSamples + block - 1) / block
	scratches := make([]*Scratch, par.Workers(workers, nBlocks))
	defer func() {
		for _, sc := range scratches {
			if sc != nil {
				m.releaseScratch(sc)
			}
		}
	}()
	if _, err := par.ForWorkerCtx(ctx, nBlocks, workers, func(w, j int) {
		sc := scratches[w]
		if sc == nil {
			sc = m.acquireScratch(block)
			scratches[w] = sc
		}
		s0 := j * block
		nb := block
		if s0+nb > nSamples {
			nb = nSamples - s0
		}
		arrivalEvals.Add(float64(nb))
		m.sampleBlock(sc, seed, s0, nb)
		m.propagateBlock(sc, nb)
		B := sc.block
		for b := 0; b < nb; b++ {
			worst := 0.0
			for i, o := range m.C.Outputs {
				t := sc.arr[int(o)*B+b]
				perOut[i][s0+b] = t
				if t > worst {
					worst = t
				}
			}
			delays[s0+b] = worst
		}
	}); err != nil {
		return nil, err
	}
	res := &STAResult{
		Arrivals:     make([]*dist.Empirical, nOut),
		CircuitDelay: dist.NewEmpirical(delays),
	}
	for i := range perOut {
		res.Arrivals[i] = dist.NewEmpirical(perOut[i])
	}
	return res, nil
}

// ClarkSTA propagates normal approximations through the circuit using
// Clark's max operator, with the pairwise correlation implied by the
// model's global/local split. It returns per-output arrival normals
// and the circuit-delay normal. This is the fast analytic mode; the
// ablation bench compares it against MonteCarloSTA.
func (m *Model) ClarkSTA() (arrivals []dist.Normal, delay dist.Normal) {
	rho := m.Correlation()
	arr := make([]dist.Normal, len(m.C.Gates))
	sigmaRel := sqrtSum(m.P.SigmaGlobal, m.P.SigmaLocal)
	for _, gid := range m.C.Order {
		g := &m.C.Gates[gid]
		if len(g.Fanin) == 0 {
			arr[gid] = dist.Normal{}
			continue
		}
		var acc dist.Normal
		for k, fi := range g.Fanin {
			nom := m.Nominal[g.InArcs[k]]
			arcN := dist.Normal{Mu: nom, Sigma: nom * sigmaRel}
			// Arrival and arc delay share the global factor: correlate
			// the sum with rho as a first-order approximation.
			cand := dist.SumNormal(arr[fi], arcN, rho)
			if k == 0 {
				acc = cand
			} else {
				acc, _ = dist.MaxNormal(acc, cand, rho)
			}
		}
		arr[gid] = acc
	}
	arrivals = make([]dist.Normal, len(m.C.Outputs))
	for i, o := range m.C.Outputs {
		arrivals[i] = arr[o]
	}
	delay = dist.MaxNormals(arrivals, rho)
	return arrivals, delay
}

func sqrtSum(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// PathDelay returns the fixed timing length of a path (a sequence of
// arcs) on an instance.
func PathDelay(in *Instance, arcs []circuit.ArcID) float64 {
	t := 0.0
	for _, a := range arcs {
		t += in.Delays[a]
	}
	return t
}

// TimingLength estimates the statistical timing length TL(p) of a path
// by Monte Carlo over nSamples instances, using all CPUs.
func (m *Model) TimingLength(arcs []circuit.ArcID, nSamples int, seed uint64) *dist.Empirical {
	tl, _ := m.TimingLengthCtx(context.Background(), arcs, nSamples, seed, 0)
	return tl
}

// TimingLengthCtx is TimingLength with cooperative cancellation and an
// explicit worker bound (0 = GOMAXPROCS, see par.Workers). Instances
// are sampled in blocks on reusable per-worker scratch; each sample
// draws the full instance (the same rng.NewDerived(seed, s) stream as
// every other Monte-Carlo entry point) and sums the path's arc delays
// in path order, so results are bit-identical to the scalar
// PathDelay(SampleInstanceSeeded(seed, s), arcs). A cancelled run
// returns (nil, ctx.Err()).
func (m *Model) TimingLengthCtx(ctx context.Context, arcs []circuit.ArcID, nSamples int, seed uint64, workers int) (*dist.Empirical, error) {
	if nSamples > 0 {
		tlSamples.Add(float64(nSamples))
	}
	xs := make([]float64, nSamples)
	block := DefaultBlock
	nBlocks := (nSamples + block - 1) / block
	scratches := make([]*Scratch, par.Workers(workers, nBlocks))
	defer func() {
		for _, sc := range scratches {
			if sc != nil {
				m.releaseScratch(sc)
			}
		}
	}()
	if _, err := par.ForWorkerCtx(ctx, nBlocks, workers, func(w, j int) {
		sc := scratches[w]
		if sc == nil {
			sc = m.acquireScratch(block)
			scratches[w] = sc
		}
		s0 := j * block
		nb := block
		if s0+nb > nSamples {
			nb = nSamples - s0
		}
		m.sampleBlock(sc, seed, s0, nb)
		B := sc.block
		for b := 0; b < nb; b++ {
			t := 0.0
			for _, a := range arcs {
				t += sc.delays[int(a)*B+b]
			}
			xs[s0+b] = t
		}
	}); err != nil {
		return nil, err
	}
	return dist.NewEmpirical(xs), nil
}

// quantileSeed is the sub-stream index used by helpers that need an
// auxiliary instance stream distinct from the main MC stream.
const quantileSeed = 0x51a9

// SuggestClock returns the q-quantile of the Monte-Carlo circuit-delay
// distribution — the natural way to pick the cut-off period clk for an
// experiment (e.g. q = 0.95 puts 5 % of defect-free dies over clk).
func (m *Model) SuggestClock(q float64, nSamples int, seed uint64) float64 {
	clk, _ := m.SuggestClockCtx(context.Background(), q, nSamples, seed, 0)
	return clk
}

// SuggestClockCtx is SuggestClock with cooperative cancellation and an
// explicit worker bound, threading ctx into the underlying Monte-Carlo
// STA run (which checks it between sample blocks). A cancelled run
// returns (0, ctx.Err()). The sub-stream derivation (quantileSeed) is
// identical to SuggestClock's, so both produce bit-identical clocks
// from the same seed.
func (m *Model) SuggestClockCtx(ctx context.Context, q float64, nSamples int, seed uint64, workers int) (float64, error) {
	res, err := m.MonteCarloSTACtx(ctx, nSamples, rng.Derive(seed, quantileSeed), workers)
	if err != nil {
		return 0, err
	}
	return res.CircuitDelay.Quantile(q), nil
}
