package timing

import (
	"context"
	"math"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/circuit"
	"repro/internal/synth"
)

// Blocked-vs-scalar equivalence suite: the blocked kernels must
// reproduce the retained scalar path (SampleInstanceSeeded +
// ArrivalTimes) bit for bit, for every block width, on a real
// ISCAS'89 netlist and on randomized synthetic circuits.

// s27Bench is the ISCAS'89 s27 netlist, inline because the synthetic
// profile table has no entry this small.
const s27Bench = `
# s27 (ISCAS'89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

func s27Model(t testing.TB) *Model {
	t.Helper()
	c, err := benchfmt.ParseString(s27Bench, "s27", true)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(c, DefaultParams())
}

func synthModel(t testing.TB, profile string, seed uint64) *Model {
	t.Helper()
	c, err := synth.GenerateNamed(profile, seed)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.SigmaGlobal, p.SigmaLocal = 0.08, 0.12
	return NewModel(c, p)
}

// scalarSTA is the pre-blocked reference implementation of
// MonteCarloSTA, retained verbatim (single-threaded) so the blocked
// kernels have a fixed point to be compared against.
func scalarSTA(m *Model, nSamples int, seed uint64) (perOut [][]float64, delays []float64) {
	perOut = make([][]float64, len(m.C.Outputs))
	for i := range perOut {
		perOut[i] = make([]float64, nSamples)
	}
	delays = make([]float64, nSamples)
	for s := 0; s < nSamples; s++ {
		in := m.SampleInstanceSeeded(seed, uint64(s))
		arr := m.ArrivalTimes(in)
		worst := 0.0
		for i, o := range m.C.Outputs {
			t := arr[o]
			perOut[i][s] = t
			if t > worst {
				worst = t
			}
		}
		delays[s] = worst
	}
	return perOut, delays
}

// scalarCriticalityCounts is the pre-blocked criticality inner loop,
// retained as the reference: per-arc critical-path counts over
// nSamples instances.
func scalarCriticalityCounts(m *Model, nSamples int, seed uint64) []int64 {
	cnt := make([]int64, len(m.C.Arcs))
	for s := 0; s < nSamples; s++ {
		inst := m.SampleInstanceSeeded(seed, uint64(s))
		arr := m.ArrivalTimes(inst)
		worst := m.C.Outputs[0]
		for _, o := range m.C.Outputs[1:] {
			if arr[o] > arr[worst] {
				worst = o
			}
		}
		g := worst
		for len(m.C.Gates[g].Fanin) > 0 {
			gate := &m.C.Gates[g]
			bestPin := 0
			bestT := arr[gate.Fanin[0]] + inst.Delays[gate.InArcs[0]]
			for k := 1; k < len(gate.Fanin); k++ {
				if t := arr[gate.Fanin[k]] + inst.Delays[gate.InArcs[k]]; t > bestT {
					bestT = t
					bestPin = k
				}
			}
			cnt[gate.InArcs[bestPin]]++
			g = gate.Fanin[bestPin]
		}
	}
	return cnt
}

// sameBits reports whether two float slices are bit-identical.
func sameBits(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// checkBlockedSTA compares blocked STA with the scalar reference for
// one (model, block, workers) configuration.
func checkBlockedSTA(t *testing.T, m *Model, nSamples int, seed uint64, block, workers int) {
	t.Helper()
	refOut, refDelays := scalarSTA(m, nSamples, seed)
	res, err := m.monteCarloSTABlocked(context.Background(), nSamples, seed, workers, block)
	if err != nil {
		t.Fatal(err)
	}
	sortedRef := make([]float64, nSamples)
	copy(sortedRef, refDelays)
	sortFloats(sortedRef)
	if i, ok := sameBits(sortedRef, res.CircuitDelay.Samples()); !ok {
		t.Fatalf("block=%d workers=%d: circuit delay diverges at sorted sample %d", block, workers, i)
	}
	for o := range refOut {
		copy(sortedRef, refOut[o])
		sortFloats(sortedRef)
		if i, ok := sameBits(sortedRef, res.Arrivals[o].Samples()); !ok {
			t.Fatalf("block=%d workers=%d output %d: arrival diverges at sorted sample %d", block, workers, o, i)
		}
	}
}

func sortFloats(xs []float64) {
	// insertion sort is fine at test sizes and avoids importing sort
	// just for a helper
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestBlockedSTAMatchesScalar sweeps block widths, including widths
// that do not divide the sample count and one larger than it, on s27
// and on randomized synthetic circuits.
func TestBlockedSTAMatchesScalar(t *testing.T) {
	const nSamples = 53
	models := map[string]*Model{
		"s27":    s27Model(t),
		"mini-1": synthModel(t, "mini", 1),
		"mini-9": synthModel(t, "mini", 9),
		"small":  synthModel(t, "small", 4),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			for _, block := range []int{1, 3, 8, 64, nSamples + 1} {
				for _, workers := range []int{1, 4} {
					checkBlockedSTA(t, m, nSamples, 17, block, workers)
				}
			}
		})
	}
}

// TestBlockedCriticalityMatchesScalar compares the blocked backtrace
// counts (via the probabilities, which are count/nSamples with exact
// integer numerators) against the scalar reference.
func TestBlockedCriticalityMatchesScalar(t *testing.T) {
	for name, m := range map[string]*Model{
		"s27":   s27Model(t),
		"small": synthModel(t, "small", 4),
	} {
		t.Run(name, func(t *testing.T) {
			const nSamples = 41
			want := scalarCriticalityCounts(m, nSamples, 23)
			for _, workers := range []int{1, 3} {
				cr := m.MonteCarloCriticality(nSamples, 23, workers)
				for i, w := range want {
					got := cr.Prob[i] * float64(nSamples)
					if math.Round(got) != float64(w) || math.Abs(got-float64(w)) > 1e-9 {
						t.Fatalf("workers=%d arc %d: count %v, want %d", workers, i, got, w)
					}
				}
			}
		})
	}
}

// TestTimingLengthCtxMatchesScalar pins TimingLengthCtx to the scalar
// PathDelay reference and to the TimingLength wrapper.
func TestTimingLengthCtxMatchesScalar(t *testing.T) {
	m := synthModel(t, "small", 4)
	// A pseudo-path of spread arcs is enough: TimingLength sums
	// whatever arcs it is given.
	arcs := make([]circuit.ArcID, 12)
	for i := range arcs {
		arcs[i] = circuit.ArcID(i * len(m.C.Arcs) / len(arcs))
	}
	const nSamples = 37
	ref := make([]float64, nSamples)
	for s := 0; s < nSamples; s++ {
		ref[s] = PathDelay(m.SampleInstanceSeeded(19, uint64(s)), arcs)
	}
	sortFloats(ref)
	for _, workers := range []int{1, 4} {
		tl, err := m.TimingLengthCtx(context.Background(), arcs, nSamples, 19, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i, ok := sameBits(ref, tl.Samples()); !ok {
			t.Fatalf("workers=%d: timing length diverges at sorted sample %d", workers, i)
		}
	}
}

// TestBlockedSTACancellation: a pre-cancelled context yields (nil, err)
// from every blocked entry point.
func TestBlockedSTACancellation(t *testing.T) {
	m := synthModel(t, "mini", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := m.MonteCarloSTACtx(ctx, 100, 7, 2); err == nil || res != nil {
		t.Fatalf("STA: res=%v err=%v, want nil result and error", res, err)
	}
	if cr, err := m.MonteCarloCriticalityCtx(ctx, 100, 7, 2); err == nil || cr != nil {
		t.Fatalf("criticality: res=%v err=%v, want nil result and error", cr, err)
	}
	if tl, err := m.TimingLengthCtx(ctx, []circuit.ArcID{0}, 100, 7, 2); err == nil || tl != nil {
		t.Fatalf("timing length: res=%v err=%v, want nil result and error", tl, err)
	}
}

// FuzzBlockedSTA fuzzes the block width (and sample count) against the
// scalar reference: any block >= 1 must be bit-exact.
func FuzzBlockedSTA(f *testing.F) {
	m := synthModel(f, "mini", 3)
	f.Add(uint8(1), uint8(10))
	f.Add(uint8(3), uint8(10))
	f.Add(uint8(8), uint8(10))
	f.Add(uint8(64), uint8(17))
	f.Add(uint8(11), uint8(10)) // block > nSamples
	f.Fuzz(func(t *testing.T, blockRaw, nRaw uint8) {
		block := int(blockRaw)
		if block < 1 {
			block = 1
		}
		nSamples := int(nRaw)%32 + 1
		checkBlockedSTA(t, m, nSamples, 29, block, 2)
	})
}

// TestSTAAllocBudget asserts the steady-state allocation count of the
// blocked STA is independent of the sample count: quadrupling the
// samples must not grow allocations beyond a small pool-miss slack.
func TestSTAAllocBudget(t *testing.T) {
	m := synthModel(t, "small", 4)
	m.MonteCarloSTA(64, 7, 1) // warm the scratch pool
	alloc := func(n int) float64 {
		return testing.AllocsPerRun(3, func() { m.MonteCarloSTA(n, 7, 1) })
	}
	a256, a1024 := alloc(256), alloc(1024)
	// Budget: result assembly is O(outputs) allocations; growth with
	// sample count must stay within pool-miss noise.
	if a1024 > a256+32 {
		t.Fatalf("allocs grow with samples: %v @256 vs %v @1024", a256, a1024)
	}
	if limit := float64(4*len(m.C.Outputs) + 64); a1024 > limit {
		t.Fatalf("allocs/op = %v, want <= %v (O(outputs), not O(samples))", a1024, limit)
	}
}
