// Package timing implements the statistical timing substrate of the
// paper: the circuit model C whose pin-to-pin arc delays are correlated
// random variables (Definition D.1), fixed-delay circuit instances
// sampled from it (Definition D.2), Monte-Carlo statistical static
// timing analysis producing arrival-time and circuit-delay
// distributions, and a Clark-approximation analytic mode used as the
// fast path and ablation baseline.
//
// Correlation follows the classic global/local decomposition used by
// cell-based statistical models: every arc delay is
//
//	d = nominal · max(ε, 1 + σ_g·G + σ_l·L)
//
// where G ~ N(0,1) is shared by the whole instance (inter-die process
// variation, correlating all arcs) and L ~ N(0,1) is drawn per arc
// (intra-die local variation). The pairwise delay correlation is then
// σ_g²/(σ_g²+σ_l²).
package timing

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/circuit"
	"repro/internal/rng"
)

// Params configures the statistical cell library. Delays are in
// arbitrary consistent time units (nominally: one NAND delay ≈ UnitDelay).
type Params struct {
	UnitDelay   float64 // base pin-to-pin delay of a 2-input NAND/NOR
	LoadFactor  float64 // relative delay increase per extra fanout of the driving gate
	FaninFactor float64 // relative delay increase per extra input pin beyond 2
	WireDelay   float64 // fixed interconnect component per arc
	PortDelay   float64 // delay of the arc into an output port gate
	SigmaGlobal float64 // global (fully correlated) sigma as a fraction of nominal
	SigmaLocal  float64 // local (independent) sigma as a fraction of nominal
}

// DefaultParams returns the library parameters used throughout the
// experiments: 10 % correlated and 5 % independent variation, matching
// the variability regime of the paper's 0.25 µm characterization.
func DefaultParams() Params {
	return Params{
		UnitDelay:   1.0,
		LoadFactor:  0.15,
		FaninFactor: 0.10,
		WireDelay:   0.10,
		PortDelay:   0.05,
		SigmaGlobal: 0.10,
		SigmaLocal:  0.05,
	}
}

// cellBase returns the nominal pin-to-pin delay multiplier per cell type.
func cellBase(t circuit.CellType) float64 {
	switch t {
	case circuit.Buf:
		return 0.6
	case circuit.Not:
		return 0.5
	case circuit.Nand, circuit.Nor:
		return 1.0
	case circuit.And, circuit.Or:
		return 1.3 // NAND/NOR plus output inverter
	case circuit.Xor, circuit.Xnor:
		return 1.7
	case circuit.Output:
		return 0 // handled by PortDelay
	default:
		return 1.0
	}
}

// Model is the statistical circuit model C = (V, E, I, O, f): the
// netlist plus one delay random variable per arc.
type Model struct {
	C       *circuit.Circuit
	P       Params
	Nominal []float64 // per-arc nominal delay (the mean of f(e))

	// pool recycles default-block kernel Scratch across Monte-Carlo
	// calls; nil (models not built via NewModel) just allocates.
	pool *sync.Pool
}

// NewModel characterizes every arc of c under p.
func NewModel(c *circuit.Circuit, p Params) *Model {
	m := &Model{C: c, P: p, Nominal: make([]float64, len(c.Arcs))}
	m.pool = newScratchPool(m)
	for i := range c.Arcs {
		a := &c.Arcs[i]
		to := &c.Gates[a.To]
		if to.Type == circuit.Output {
			m.Nominal[i] = p.PortDelay
			continue
		}
		d := p.UnitDelay * cellBase(to.Type)
		if extra := len(to.Fanin) - 2; extra > 0 {
			d *= 1 + p.FaninFactor*float64(extra)
		}
		if extra := len(c.Gates[a.From].Fanout) - 1; extra > 0 {
			d *= 1 + p.LoadFactor*float64(extra)
		}
		m.Nominal[i] = d + p.WireDelay
	}
	return m
}

// MeanCellDelay returns the average nominal arc delay over logic arcs
// (excluding output-port arcs). The paper's defect-size distribution is
// specified in units of "a cell delay"; this is that unit.
func (m *Model) MeanCellDelay() float64 {
	sum, n := 0.0, 0
	for i := range m.C.Arcs {
		if m.C.Gates[m.C.Arcs[i].To].Type == circuit.Output {
			continue
		}
		sum += m.Nominal[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Correlation returns the pairwise delay correlation implied by the
// global/local sigma split.
func (m *Model) Correlation() float64 {
	g2 := m.P.SigmaGlobal * m.P.SigmaGlobal
	l2 := m.P.SigmaLocal * m.P.SigmaLocal
	if g2+l2 == 0 {
		return 0
	}
	return g2 / (g2 + l2)
}

// Instance is a fixed-delay circuit instance C_in (Definition D.2):
// one manufactured die drawn from the model.
type Instance struct {
	Delays []float64 // per-arc fixed delay
}

// minScale truncates the multiplicative variation so delays stay
// positive (Definition D.1 defines f(e) over [0, +inf]).
const minScale = 0.05

// sampleArc computes one arc's fixed delay from the instance's global
// factor g and the arc's local factor l. Both the scalar sampler and
// the blocked kernel funnel through this helper, so the two paths
// evaluate the same floating-point expression and produce bit-identical
// delays.
func (m *Model) sampleArc(nom, g, l float64) float64 {
	scale := 1 + m.P.SigmaGlobal*g + m.P.SigmaLocal*l
	if scale < minScale {
		scale = minScale
	}
	return nom * scale
}

// SampleInstance draws one circuit instance using r.
func (m *Model) SampleInstance(r *rand.Rand) *Instance {
	in := &Instance{Delays: make([]float64, len(m.Nominal))}
	m.SampleDelaysInto(in.Delays, r)
	return in
}

// SampleDelaysInto draws one instance's per-arc delays into dst (which
// must have length len(m.Nominal)) without allocating — the scratch
// form of SampleInstance for hot Monte-Carlo loops. The RNG draw order
// (one global normal, then one local normal per arc) is identical to
// SampleInstance's, so both produce bit-identical delays from the same
// generator state.
func (m *Model) SampleDelaysInto(dst []float64, r *rand.Rand) {
	g := r.NormFloat64()
	for i, nom := range m.Nominal {
		dst[i] = m.sampleArc(nom, g, r.NormFloat64())
	}
}

// SampleInstanceSeeded draws the idx-th instance of a deterministic
// sequence rooted at seed.
func (m *Model) SampleInstanceSeeded(seed, idx uint64) *Instance {
	return m.SampleInstance(rng.NewDerived(seed, idx))
}

// NominalInstance returns the instance with every arc at its nominal
// delay (the "typical corner").
func (m *Model) NominalInstance() *Instance {
	in := &Instance{Delays: make([]float64, len(m.Nominal))}
	copy(in.Delays, m.Nominal)
	return in
}

// WithDefect returns a copy of the instance with extra delay added on
// one arc — the single-defect model D_s applied to this die.
func (in *Instance) WithDefect(arc circuit.ArcID, size float64) *Instance {
	out := &Instance{Delays: make([]float64, len(in.Delays))}
	copy(out.Delays, in.Delays)
	out.Delays[arc] += size
	return out
}

func (m *Model) String() string {
	return fmt.Sprintf("Model(%s: %d arcs, unit=%g, σg=%g, σl=%g)",
		m.C.Name, len(m.Nominal), m.P.UnitDelay, m.P.SigmaGlobal, m.P.SigmaLocal)
}
