package timing

import (
	"context"
	"testing"

	"repro/internal/synth"
)

func ctxTestModel(t *testing.T) *Model {
	t.Helper()
	c, err := synth.GenerateNamed("small", 2003)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(c, DefaultParams())
}

func TestMonteCarloSTACtxMatchesPlain(t *testing.T) {
	m := ctxTestModel(t)
	plain := m.MonteCarloSTA(64, 7, 2)
	viaCtx, err := m.MonteCarloSTACtx(context.Background(), 64, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := viaCtx.CircuitDelay.Quantile(0.5), plain.CircuitDelay.Quantile(0.5); got != want { //lint:ignore floateq same seed and sample count must reproduce bit-identical empirical distributions
		t.Errorf("ctx variant diverged: median %v vs %v", got, want)
	}
}

func TestMonteCarloSTACtxCancelled(t *testing.T) {
	m := ctxTestModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.MonteCarloSTACtx(ctx, 512, 7, 2)
	if err == nil {
		t.Fatal("err = nil on a dead context")
	}
	if res != nil {
		t.Error("cancelled run returned a partial STAResult")
	}
}

func TestMonteCarloCriticalityCtxMatchesPlain(t *testing.T) {
	m := ctxTestModel(t)
	plain := m.MonteCarloCriticality(64, 11, 2)
	viaCtx, err := m.MonteCarloCriticalityCtx(context.Background(), 64, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Prob {
		if plain.Prob[i] != viaCtx.Prob[i] { //lint:ignore floateq same seed and sample count must reproduce bit-identical probabilities
			t.Fatalf("ctx variant diverged at arc %d: %v vs %v", i, viaCtx.Prob[i], plain.Prob[i])
		}
	}
}

func TestMonteCarloCriticalityCtxCancelled(t *testing.T) {
	m := ctxTestModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cr, err := m.MonteCarloCriticalityCtx(ctx, 4096, 11, 2)
	if err == nil {
		t.Fatal("err = nil on a dead context")
	}
	if cr != nil {
		t.Error("cancelled run returned a partial Criticality")
	}
}

func TestMonteCarloCriticalityCtxZeroSamples(t *testing.T) {
	m := ctxTestModel(t)
	cr, err := m.MonteCarloCriticalityCtx(context.Background(), 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cr == nil || len(cr.Prob) != len(m.C.Arcs) {
		t.Fatal("zero-sample call must return the zero-value Criticality")
	}
	for i, p := range cr.Prob {
		if p != 0 {
			t.Fatalf("Prob[%d] = %v, want 0", i, p)
		}
	}
}
