package timing

import (
	"repro/internal/obs"
)

// Process-wide sample counters (obs.Default registry) for the
// Monte-Carlo timing analyses. Each analysis adds its whole sample
// count once per call; ArrivalTimes adds one per evaluation, which is
// a single atomic add against a full topological walk, so the hot
// sampling loops stay unmeasurably close to their uninstrumented
// cost while every scrape can tell how much timing work the process
// has done.
var (
	critSamples = obs.Default().Counter("ddd_timing_samples_total",
		"Monte-Carlo instances sampled, by analysis", obs.Labels{"kind": "criticality"})
	staSamples = obs.Default().Counter("ddd_timing_samples_total",
		"Monte-Carlo instances sampled, by analysis", obs.Labels{"kind": "sta"})
	tlSamples = obs.Default().Counter("ddd_timing_samples_total",
		"Monte-Carlo instances sampled, by analysis", obs.Labels{"kind": "timing_length"})
	critSeconds = obs.Default().Counter("ddd_timing_seconds_total",
		"wall time in Monte-Carlo timing analyses, by analysis", obs.Labels{"kind": "criticality"})
	staSeconds = obs.Default().Counter("ddd_timing_seconds_total",
		"wall time in Monte-Carlo timing analyses, by analysis", obs.Labels{"kind": "sta"})
	arrivalEvals = obs.Default().Counter("ddd_timing_arrival_evals_total",
		"ArrivalTimes evaluations (one static timing pass per sampled instance)", nil)
)
