package timing

import (
	"sync"

	"repro/internal/rng"
)

// DefaultBlock is the sample-block width of the Monte-Carlo kernels:
// how many circuit instances one topological traversal propagates at
// once. Eight float64 lanes fill one 64-byte cache line, so in the
// struct-of-arrays layout every arc-delay and arrival access touches
// exactly one line per block instead of one line per sample.
const DefaultBlock = 8

// Scratch is the reusable per-worker state of the blocked Monte-Carlo
// kernels: delay and arrival buffers for one block of instances plus a
// reseedable RNG stream. Acquiring a Scratch once per worker and
// reusing it across blocks makes the kernels' steady-state allocation
// count independent of the sample count.
//
// Layouts:
//
//	rows[b*nArcs+a]  per-lane sampling rows — lane b's instance is a
//	                 contiguous run, written in arc order by the RNG
//	delays[a*B+b]    struct-of-arrays arc delays, transposed from rows
//	arr[g*B+b]       struct-of-arrays gate arrival times
//
// Sampling writes rows sequentially (the RNG emits one instance at a
// time), then transposes into the SoA delays; propagation then streams
// whole blocks per arc/gate. A Scratch is not safe for concurrent use;
// give each worker its own.
type Scratch struct {
	block  int
	nArcs  int
	nGates int
	rows   []float64
	delays []float64
	arr    []float64
	stream *rng.Stream
}

// NewScratch returns a Scratch for m with the given block width
// (block <= 0 selects DefaultBlock).
func NewScratch(m *Model, block int) *Scratch {
	if block <= 0 {
		block = DefaultBlock
	}
	nArcs, nGates := len(m.Nominal), len(m.C.Gates)
	return &Scratch{
		block:  block,
		nArcs:  nArcs,
		nGates: nGates,
		rows:   make([]float64, block*nArcs),
		delays: make([]float64, nArcs*block),
		arr:    make([]float64, nGates*block),
		stream: rng.NewStream(),
	}
}

// Block returns the scratch's block width.
func (sc *Scratch) Block() int { return sc.block }

// acquireScratch hands out a Scratch for a kernel worker: from the
// model's pool when the default block width is wanted (so repeated
// Monte-Carlo calls reuse warm buffers), freshly allocated otherwise.
// Models built without NewModel have a nil pool and always allocate.
func (m *Model) acquireScratch(block int) *Scratch {
	if block <= 0 {
		block = DefaultBlock
	}
	if block == DefaultBlock && m.pool != nil {
		return m.pool.Get().(*Scratch)
	}
	return NewScratch(m, block)
}

// releaseScratch returns a Scratch obtained from acquireScratch.
// Non-default block widths are dropped rather than pooled.
func (m *Model) releaseScratch(sc *Scratch) {
	if sc == nil || sc.block != DefaultBlock || m.pool == nil {
		return
	}
	m.pool.Put(sc)
}

// newScratchPool builds the model's Scratch pool. The pool holds
// default-block scratches only; sync.Pool keeps them across calls and
// lets the GC reclaim them under memory pressure.
func newScratchPool(m *Model) *sync.Pool {
	return &sync.Pool{New: func() any { return NewScratch(m, DefaultBlock) }}
}
